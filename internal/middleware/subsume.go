package middleware

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"github.com/maliva/maliva/internal/engine"
)

// This file extends the single-flight machinery from exact request identity
// to containment ("request subsumption"): a cached — or still in-flight —
// heatmap whose region contains the requested region, with matching
// keyword/time/kind/budget/data-version and exactly-aligned grid cells, can
// answer the sub-request by slicing its bins, byte-identical to direct
// execution. Non-aligned (or scatter) requests fall through to normal
// execution.
//
// Subsumption is heatmap-only and slice-only by design:
//   - Scatter responses expose raw point slices whose order is a plan
//     artifact; a parent executed under a different physical plan may emit
//     the same points in a different order, so filtering a parent's points
//     cannot be byte-identical to direct execution.
//   - Only equal cell sizes are accepted (no aggregation of finer parent
//     cells into coarser requested cells): per-cell counts are copied, never
//     re-summed, so float summation order can never diverge from the direct
//     path. With equal cells, a parent bin IS the direct path's bin — both
//     count the same points at the same weight.
//
// The one caveat is inherent to float grids: a point lying exactly on the
// sub-region's max edge (or within ~1 ulp of a shared cell boundary) can
// bin differently under the sub-grid's clamp than under the parent's. For
// continuous coordinates these are measure-zero events; the differential
// test in subsume_test.go exercises randomized aligned viewports against
// direct execution to keep this honest.

// famKey names a subsumption family: every request dimension that must
// match exactly between a containing result and the sub-requests it may
// answer — everything in ResultKey except the region/grid geometry. (SQL
// text embeds the region predicate, so key equality is precisely what
// subsumption must NOT require.)
type famKey struct {
	keyword string
	fromMs  int64
	toMs    int64
	kind    VizKind
	budget  float64
	version uint64
	// approx separates fidelity classes: an approximate result must never be
	// a containment candidate for an exact request, and vice versa. Beyond
	// the family split, containment answering is gated to exact requests
	// entirely (see join and subsumeFromCache): a Bernoulli sample's seed
	// derives from the query fingerprint, which embeds the region predicate,
	// so a parent's sampled rows restricted to a sub-region are NOT the
	// sub-request's sample — slicing would not be byte-identical.
	approx string
}

// alignEps is the lattice-alignment tolerance, measured in cells. Real
// tile traffic produces offsets within ~1e-12 cells of integral (float
// noise of extent/2^z arithmetic); anything farther off than 1e-7 of a
// cell is treated as genuinely non-aligned and falls through to execution.
const alignEps = 1e-7

// axisAlign checks one axis of gridAlign: sub cells must equal parent
// cells in size and sit on the parent's cell lattice. Returns the sub
// window's offset in parent cells.
func axisAlign(pMin, pMax float64, pn int, sMin, sMax float64, sn int) (off int, ok bool) {
	span := pMax - pMin
	if span <= 0 || pn <= 0 || sn <= 0 {
		return 0, false
	}
	cell := span / float64(pn)
	fo := (sMin - pMin) / cell
	off = int(math.Round(fo))
	if math.Abs(fo-float64(off)) > alignEps {
		return 0, false
	}
	fw := (sMax - sMin) / cell
	if n := int(math.Round(fw)); n != sn || math.Abs(fw-float64(n)) > alignEps {
		return 0, false
	}
	if off < 0 || off+sn > pn {
		return 0, false
	}
	return off, true
}

// gridAlign reports whether the sub request's grid (region sr, sn×sm cells)
// lies exactly on the parent grid's cell lattice — same cell size, cell
// boundaries snapped — and returns the sub window's cell offset inside the
// parent grid.
func gridAlign(pr engine.Rect, pw, ph int, sr engine.Rect, sw, sh int) (ox, oy int, ok bool) {
	ox, ok = axisAlign(pr.MinLon, pr.MaxLon, pw, sr.MinLon, sr.MaxLon, sw)
	if !ok {
		return 0, 0, false
	}
	oy, ok = axisAlign(pr.MinLat, pr.MaxLat, ph, sr.MinLat, sr.MaxLat, sh)
	if !ok {
		return 0, 0, false
	}
	return ox, oy, true
}

// sliceBins copies the sub window's cells out of a parent bin map. Sparsity
// is preserved: absent parent cells stay absent, matching what direct
// execution of the sub-request would produce (its bin map only holds cells
// with points).
func sliceBins(parent map[int]float64, pw, ox, oy, sw, sh int) map[int]float64 {
	out := make(map[int]float64)
	for ry := 0; ry < sh; ry++ {
		prow := (oy+ry)*pw + ox
		for rx := 0; rx < sw; rx++ {
			if v, ok := parent[prow+rx]; ok {
				out[ry*sw+rx] = v
			}
		}
	}
	return out
}

// regionEntry is one cached heatmap registered for containment lookup.
type regionEntry struct {
	key    ResultKey
	region engine.Rect
	gw, gh int
}

// famRef locates an entry for FIFO eviction.
type famRef struct {
	fam famKey
	key ResultKey
}

// defaultRegionIndexCap bounds the containment index. Entries are tiny
// (they alias cached keys, not responses); the cap only has to outlive the
// result cache's useful population.
const defaultRegionIndexCap = 1024

// regionIndex maps a subsumption family to the cached results that might
// contain future sub-requests. It is an index over the result cache, not a
// cache itself: lookups re-validate every candidate against the live cache
// and drop entries whose backing response is gone (evicted or expired).
type regionIndex struct {
	mu    sync.Mutex
	cap   int
	fams  map[famKey]map[ResultKey]regionEntry
	order []famRef // insertion order, for FIFO eviction
}

func newRegionIndex(cap int) *regionIndex {
	if cap <= 0 {
		cap = defaultRegionIndexCap
	}
	return &regionIndex{cap: cap, fams: make(map[famKey]map[ResultKey]regionEntry)}
}

// add registers a freshly-cached result; duplicate keys are no-ops.
func (ri *regionIndex) add(fam famKey, e regionEntry) {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	m := ri.fams[fam]
	if m == nil {
		m = make(map[ResultKey]regionEntry)
		ri.fams[fam] = m
	}
	if _, ok := m[e.key]; ok {
		return
	}
	m[e.key] = e
	ri.order = append(ri.order, famRef{fam: fam, key: e.key})
	for len(ri.order) > ri.cap {
		old := ri.order[0]
		ri.order = ri.order[1:]
		ri.dropLocked(old.fam, old.key)
	}
}

// candidates snapshots a family's entries (lock released before the caller
// touches the result cache, which may be slow in a cluster).
func (ri *regionIndex) candidates(fam famKey) []regionEntry {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	m := ri.fams[fam]
	if len(m) == 0 {
		return nil
	}
	out := make([]regionEntry, 0, len(m))
	for _, e := range m {
		out = append(out, e)
	}
	return out
}

// remove drops a stale entry (its cached response is gone). The order slice
// keeps its ref; dropLocked tolerates double removal.
func (ri *regionIndex) remove(fam famKey, key ResultKey) {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	ri.dropLocked(fam, key)
}

func (ri *regionIndex) dropLocked(fam famKey, key ResultKey) {
	if m := ri.fams[fam]; m != nil {
		delete(m, key)
		if len(m) == 0 {
			delete(ri.fams, fam)
		}
	}
}

// execCall is one in-flight execute+bin, joinable both by exact key and —
// for heatmaps — by contained, aligned sub-requests.
type execCall struct {
	done   chan struct{}
	fam    famKey
	rkey   ResultKey
	region engine.Rect
	gw, gh int
	// prefetch marks a call whose primary is speculative; the first live
	// request that rides it claims the prefetch-hit credit (see claimed).
	prefetch bool
	claimed  bool // guarded by the flight mutex
	// boost is set by a live request that joins this call. A speculative
	// primary's background yield checks it: once a live request is blocked
	// on this very computation, parking to "get out of live requests' way"
	// would have the waiter waiting on the parker — the build must finish
	// at full speed instead.
	boost atomic.Bool
	resp  *Response
	err   error
}

// errExecAborted is what waiters see when a primary died without
// publishing (a panic unwound through handle); they fall back to executing
// themselves.
var errExecAborted = errors.New("middleware: in-flight execution aborted")

// execFlight coalesces concurrent executions: exact duplicates share one
// execution, and an aligned sub-request can wait on a strictly-containing
// in-flight parent and slice its result. Waiting forms no cycles —
// containment is a strict partial order and equal keys join exactly — so a
// chain of waiters always bottoms out at a running primary.
type execFlight struct {
	mu    sync.Mutex
	exact map[ResultKey]*execCall
	fams  map[famKey][]*execCall
}

func newExecFlight() *execFlight {
	return &execFlight{exact: make(map[ResultKey]*execCall), fams: make(map[famKey][]*execCall)}
}

// join finds (or registers) the execution for a planned request. primary
// reports whether the caller must execute and finish the returned call;
// otherwise the caller waits on done. exact distinguishes an identical
// in-flight request from a containing parent (ox/oy are the slice offsets
// in the latter case). subsume gates containment joins.
func (f *execFlight) join(p planned, prefetch, subsume bool) (c *execCall, primary bool, ox, oy int, exact bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c := f.exact[p.rkey]; c != nil {
		return c, false, 0, 0, true
	}
	if subsume && p.rkey.Kind == VizHeatmap && p.rkey.Approx == "" {
		for _, c := range f.fams[p.fam] {
			if c.rkey.Kind != VizHeatmap || c.rkey == p.rkey {
				continue
			}
			if ox, oy, ok := gridAlign(c.region, c.gw, c.gh, p.rkey.Region, p.rkey.GridW, p.rkey.GridH); ok {
				return c, false, ox, oy, false
			}
		}
	}
	c = &execCall{
		done: make(chan struct{}), fam: p.fam, rkey: p.rkey,
		region: p.rkey.Region, gw: p.rkey.GridW, gh: p.rkey.GridH,
		prefetch: prefetch,
	}
	f.exact[p.rkey] = c
	f.fams[p.fam] = append(f.fams[p.fam], c)
	return c, true, 0, 0, false
}

// claimPrefetchCredit atomically claims the one prefetch-hit credit of a
// speculative in-flight call; the first live rider wins.
func (f *execFlight) claimPrefetchCredit(c *execCall) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !c.prefetch || c.claimed {
		return false
	}
	c.claimed = true
	return true
}

// claimed reports whether a live rider already took the call's credit.
func (f *execFlight) wasClaimed(c *execCall) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return c.claimed
}

// finish publishes a primary's outcome and deregisters the call. A nil
// response with a nil error (the primary unwound without publishing) is
// normalized to errExecAborted so waiters retry on their own.
func (f *execFlight) finish(c *execCall, resp *Response, err error) {
	f.mu.Lock()
	delete(f.exact, c.rkey)
	calls := f.fams[c.fam]
	for i, fc := range calls {
		if fc == c {
			calls[i] = calls[len(calls)-1]
			calls = calls[:len(calls)-1]
			break
		}
	}
	if len(calls) == 0 {
		delete(f.fams, c.fam)
	} else {
		f.fams[c.fam] = calls
	}
	f.mu.Unlock()
	if resp == nil && err == nil {
		err = errExecAborted
	}
	c.resp, c.err = resp, err
	close(c.done)
}

// prefetchMarks remembers which cached keys were computed speculatively, so
// the first live request served from one counts as a prefetch hit (count
// once: hits unmark). Bounded FIFO — stale marks age out harmlessly.
type prefetchMarks struct {
	mu    sync.Mutex
	cap   int
	keys  map[ResultKey]struct{}
	order []ResultKey
}

const defaultPrefetchMarks = 4096

func newPrefetchMarks(cap int) *prefetchMarks {
	if cap <= 0 {
		cap = defaultPrefetchMarks
	}
	return &prefetchMarks{cap: cap, keys: make(map[ResultKey]struct{})}
}

func (pm *prefetchMarks) mark(key ResultKey) {
	if pm == nil {
		return
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if _, ok := pm.keys[key]; ok {
		return
	}
	pm.keys[key] = struct{}{}
	pm.order = append(pm.order, key)
	for len(pm.order) > pm.cap {
		delete(pm.keys, pm.order[0])
		pm.order = pm.order[1:]
	}
}

// unmark removes a mark, reporting whether it was present.
func (pm *prefetchMarks) unmark(key ResultKey) bool {
	if pm == nil {
		return false
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if _, ok := pm.keys[key]; !ok {
		return false
	}
	delete(pm.keys, key)
	return true
}

// LocalGetter is an optional ResultCache refinement: Get restricted to this
// process's local layer. The containment lookup probes candidate parents
// through it so validating an index entry never pays a cluster peer round
// trip (subsumption is a local optimization; the caches it indexes are the
// replica's own).
type LocalGetter interface {
	GetLocal(key ResultKey) *Response
}

// localGet probes the result cache without crossing the peer wire.
func (s *Server) localGet(key ResultKey) *Response {
	if lg, ok := s.results.(LocalGetter); ok {
		return lg.GetLocal(key)
	}
	return s.results.Get(key)
}

// notePrefetchHit credits a live request served from a speculatively-
// computed entry (counted once per prefetched key).
func (s *Server) notePrefetchHit(key ResultKey) {
	if s.prefetched.unmark(key) {
		s.metrics.prefetchHits.Add(1)
	}
}

// subsumeFromCache answers a planned heatmap request from a cached,
// strictly-containing, cell-aligned result, or returns nil. On success the
// sliced response is cached under the sub-request's own key (a normal,
// version-stamped entry) so repeats are exact hits.
func (s *Server) subsumeFromCache(p planned, prefetch bool) *Response {
	if s.regions == nil || p.rkey.Kind != VizHeatmap || p.rkey.Approx != "" {
		return nil
	}
	for _, e := range s.regions.candidates(p.fam) {
		if e.key == p.rkey {
			continue
		}
		ox, oy, ok := gridAlign(e.region, e.gw, e.gh, p.rkey.Region, p.rkey.GridW, p.rkey.GridH)
		if !ok {
			continue
		}
		parent := s.localGet(e.key)
		if parent == nil {
			s.regions.remove(p.fam, e.key)
			continue
		}
		resp := responseShell(p)
		resp.Bins = sliceBins(parent.Bins, e.gw, ox, oy, p.rkey.GridW, p.rkey.GridH)
		s.putResult(p, resp, prefetch)
		if !prefetch {
			s.metrics.subsumedHits.Add(1)
			s.notePrefetchHit(e.key)
		}
		return resp
	}
	return nil
}

// putResult caches a computed (or sliced) response under its own key and
// registers heatmaps in the containment index; speculative results are
// marked so their first live consumer counts as a prefetch hit.
func (s *Server) putResult(p planned, resp *Response, prefetch bool) {
	s.results.Put(p.rkey, resp)
	if s.regions != nil && p.rkey.Kind == VizHeatmap && p.rkey.Approx == "" {
		s.regions.add(p.fam, regionEntry{key: p.rkey, region: p.rkey.Region, gw: p.rkey.GridW, gh: p.rkey.GridH})
	}
	if prefetch {
		s.prefetched.mark(p.rkey)
	}
}
