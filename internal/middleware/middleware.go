package middleware

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/viz"
	"github.com/maliva/maliva/internal/workload"
)

// VizKind selects the visualization type of a request.
type VizKind string

const (
	// VizHeatmap returns per-cell counts.
	VizHeatmap VizKind = "heatmap"
	// VizScatter returns raw points.
	VizScatter VizKind = "scatter"
	// VizCount returns a single matching-row count (exact, sampled, or
	// CMS-sketch-served depending on the chosen rewrite option).
	VizCount VizKind = "count"
	// VizDistinct returns the number of distinct words among matching rows
	// (exact or HLL-sketch-served).
	VizDistinct VizKind = "distinct"
)

// Request is a frontend visualization request (the running example of §1:
// "tweets containing <keyword> in <region> during <time range>").
type Request struct {
	Keyword  string      `json:"keyword"`
	From     time.Time   `json:"from"`
	To       time.Time   `json:"to"`
	Region   engine.Rect `json:"region"`
	Kind     VizKind     `json:"kind"`
	GridW    int         `json:"grid_w"`
	GridH    int         `json:"grid_h"`
	BudgetMs float64     `json:"budget_ms"`
	// TTL is the request's staleness tolerance (the parsed form of the
	// `/* ttl:N */` wire hint): zero demands the current data version, a
	// positive value lets the server answer from a cached result computed at
	// any data version that was current within the last TTL of wall time.
	// TTL only widens the result-cache probe — it never changes what gets
	// computed or stored.
	TTL time.Duration `json:"ttl,omitempty"`
}

// Response is the visualization result plus a trace of what the middleware
// did — useful for demos and debugging.
type Response struct {
	Kind   VizKind         `json:"kind"`
	Bins   map[int]float64 `json:"bins,omitempty"`
	Points []engine.Point  `json:"points,omitempty"`
	// Value carries the aggregate answer for VizCount/VizDistinct requests.
	Value *float64 `json:"value,omitempty"`
	GridW int      `json:"grid_w"`
	GridH int      `json:"grid_h"`
	// Approximate marks any answer whose rewrite option changes query
	// results (sampling, LIMIT truncation, sketch-served aggregates); Approx
	// then states the error contract. Exact answers leave both fields at
	// their zero values, so exact response bytes are unchanged by the tier.
	Approximate bool        `json:"approximate,omitempty"`
	Approx      *ApproxMeta `json:"approx,omitempty"`
	Trace       Trace       `json:"trace"`
}

// ApproxMeta is the error contract attached to an approximate answer: what
// method produced it, the stated bound on the aggregate estimate, and the
// fingerprint that — together with the data version inside the cache key —
// pins the answer's bytes (see docs/ARCHITECTURE.md, "Approximation & the
// bit-identity carve-out").
type ApproxMeta struct {
	// Method names the approximation: "rows", "reservoir", "cms", "hll",
	// "sample", or "limit".
	Method string `json:"method"`
	// Confidence is the stated coverage of CIHalfWidth (0.95 for two-sided
	// intervals; zero when no probabilistic bound applies, e.g. "limit").
	Confidence float64 `json:"confidence,omitempty"`
	// CIHalfWidth bounds the error of Value: a two-sided CI half-width for
	// sampling/HLL, the one-sided overestimate bound for CMS.
	CIHalfWidth float64 `json:"ci_half_width,omitempty"`
	// Bound classifies the bound: "two-sided", "overestimate", "exact-count"
	// (reservoir: the count is exact, only per-cell values are scaled), or
	// "truncation" (LIMIT: no bound is stated).
	Bound string `json:"bound"`
	// Fingerprint is the approximation clause of the result-cache key — the
	// (method, parameters, seed) tag that keeps approximate entries from
	// ever answering exact requests.
	Fingerprint string `json:"fingerprint"`
}

// Trace records the rewriting decision for a request.
type Trace struct {
	SQL          string  `json:"sql"`
	RewrittenSQL string  `json:"rewritten_sql"`
	Option       string  `json:"option"`
	BudgetMs     float64 `json:"budget_ms"`
	PlanMs       float64 `json:"plan_ms"`
	ExecMs       float64 `json:"exec_ms"`
	TotalMs      float64 `json:"total_ms"`
	Viable       bool    `json:"viable"`
	Quality      float64 `json:"quality"`
	NumExplored  int     `json:"num_explored"`
}

// ServerConfig sizes the serving layer. The zero value of each field picks
// the default noted on it; a negative size disables that subsystem.
type ServerConfig struct {
	// DefaultBudgetMs applies when a request has no budget. Default 500.
	DefaultBudgetMs float64
	// PlanCacheSize caps the number of cached query shapes (contexts).
	// Default 512; negative disables the plan cache.
	PlanCacheSize int
	// ResultCacheSize caps the number of cached responses. Default 4096;
	// negative disables the result cache.
	ResultCacheSize int
	// ResultTTL is the result-cache entry lifetime. Default 30s.
	ResultTTL time.Duration
	// CacheShards splits the plan and result caches into independently
	// locked shards selected by key hash, so concurrent traffic (especially
	// a gateway's cross-dataset mix) doesn't serialize on two mutexes.
	// Default 16; 1 restores the single-lock layout. Capacity is the total
	// across shards.
	CacheShards int
	// MaxConcurrent bounds in-flight request execution. Default
	// 4×GOMAXPROCS; negative disables admission control.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a slot; beyond it requests are
	// rejected with 429. Default 256.
	MaxQueue int
	// QueueTimeout caps how long a request may wait for a slot; the
	// effective per-request deadline is min(QueueTimeout, its budget_ms
	// as real time). Default 1s.
	QueueTimeout time.Duration
	// PrefetchQueue bounds the admission queue's prefetch lane (speculative
	// requests waiting for idle capacity; shed first, served last). Default
	// 64; negative disables queuing, so prefetches are admitted only against
	// instantly-free idle slots.
	PrefetchQueue int
	// DisableSubsumption turns off containment-based request answering:
	// every request is then served only by exact key identity (cache,
	// single-flight) or execution. The prefetch-off benchmark pass and
	// differential tests use it.
	DisableSubsumption bool
	// Ingest tunes the server's adaptive ingest batcher (zero values pick
	// the engine defaults; see engine.IngestorConfig).
	Ingest engine.IngestorConfig
	// WrapResultCache, when set, wraps the server's built-in result cache
	// before first use — the extension point internal/cluster uses to layer
	// a peer-aware cache (local miss → fetch from the key's owning replica)
	// over the local sharded cache. It must return a ResultCache honoring
	// the same contract; returning the argument unchanged is a no-op. Not
	// called when the result cache is disabled (ResultCacheSize < 0):
	// layering peer round trips over a cache that drops everything would
	// cost latency and never hit.
	WrapResultCache func(local ResultCache) ResultCache
	// Now overrides the result-cache clock (tests). Default time.Now.
	Now func() time.Time
}

// normalized resolves defaults and disables.
func (c ServerConfig) normalized() ServerConfig {
	if c.DefaultBudgetMs <= 0 {
		c.DefaultBudgetMs = 500
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 512
	}
	if c.ResultCacheSize == 0 {
		c.ResultCacheSize = 4096
	}
	if c.ResultTTL <= 0 {
		c.ResultTTL = 30 * time.Second
	}
	if c.CacheShards <= 0 {
		c.CacheShards = defaultCacheShards
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 256
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// lookupCacheCap bounds the server-scope predicate-lookup cache. Entries
// are keyed on client-supplied predicate values and each pins a row-ID
// slice, so a server facing unbounded distinct shapes must stop memoizing
// at some point (the plan/result caches have LRU caps; this one freezes
// when full, which keeps the canonical-slice aliasing invariant trivially).
const lookupCacheCap = 8192

// Server is the Maliva middleware bound to one dataset and one rewriter.
// It is safe for concurrent use; see ServerConfig for the caching and
// admission knobs.
type Server struct {
	DS       *workload.Dataset
	Rewriter core.Rewriter
	Space    core.SpaceSpec

	cfg   ServerConfig
	table *engine.Table
	// Filter columns resolved once at construction (BuildQuery previously
	// rescanned FilterCols per request).
	textCol, timeCol, geoCol string

	lookups *engine.LookupCache
	plans   *shardedPlanCache
	results ResultCache
	admit   *admission
	metrics *Metrics
	ingest  *engine.Ingestor

	// Session-aware serving state (nil when the result cache is disabled:
	// with nothing to warm or share, every request simply executes).
	flight     *execFlight    // exact + containment single-flight
	regions    *regionIndex   // containment index (nil: subsumption disabled)
	prefetched *prefetchMarks // speculative keys awaiting their first live hit

	// rewriteMu serializes Rewriter.Rewrite: rewriters are not required to
	// be concurrency-safe (the MDP agent's Q-network reuses forward-pass
	// scratch buffers). Only cold plan-cache paths take it; cached shapes
	// never plan again.
	rewriteMu sync.Mutex

	// Lifecycle: serving → draining → closed, one-way (see lifecycle.go).
	// faultHook is the test-only fault injection point for the panic-recovery
	// middleware.
	state     atomic.Int32
	closeOnce sync.Once
	closeErr  error
	faultHook atomic.Pointer[func(string)]

	// liveHTTP counts live /viz requests between handler entry and the end
	// of response encoding; lastLiveNs is when the count last dropped. The
	// admission slot's livePressure window misses the edges of a request —
	// connection read before acquire, response flush after release, the
	// client goroutine's own wakeups on a co-located load generator — and a
	// background execution resuming inside those edges adds a sub-ms stall
	// per goroutine handoff, enough to push a warm hit past its SLO. The
	// background yield hook therefore parks on this wider signal: any live
	// request in the handler, or one that finished less than liveCooldown
	// ago (covering the post-release edges).
	liveHTTP   atomic.Int64
	lastLiveNs atomic.Int64
}

// NewServer creates a middleware over a dataset using the given rewriter
// and the default serving configuration. It fails if the dataset is missing
// its main table or has neither a time nor a point filter column (no
// spatio-temporal request could ever be served).
func NewServer(ds *workload.Dataset, rw core.Rewriter, space core.SpaceSpec, defaultBudgetMs float64) (*Server, error) {
	return NewServerWithConfig(ds, rw, space, ServerConfig{DefaultBudgetMs: defaultBudgetMs})
}

// NewServerWithConfig is NewServer with explicit serving knobs.
func NewServerWithConfig(ds *workload.Dataset, rw core.Rewriter, space core.SpaceSpec, cfg ServerConfig) (*Server, error) {
	t := ds.DB.Table(ds.Main)
	if t == nil {
		return nil, fmt.Errorf("middleware: dataset has no table %q", ds.Main)
	}
	cfg = cfg.normalized()
	s := &Server{
		DS:       ds,
		Rewriter: rw,
		Space:    space,
		cfg:      cfg,
		table:    t,
		lookups:  engine.NewLookupCacheWithCap(lookupCacheCap),
		plans:    newShardedPlanCache(cfg.PlanCacheSize, cfg.CacheShards),
		results:  newShardedResultCache(cfg.ResultCacheSize, cfg.CacheShards, cfg.ResultTTL, cfg.Now),
		admit:    newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.PrefetchQueue),
		metrics:  NewMetrics(),
	}
	if cfg.ResultCacheSize > 0 {
		s.flight = newExecFlight()
		s.prefetched = newPrefetchMarks(0)
		if !cfg.DisableSubsumption {
			s.regions = newRegionIndex(0)
		}
	}
	if cfg.WrapResultCache != nil && s.results.(*shardedResultCache) != nil {
		s.results = cfg.WrapResultCache(s.results)
		if s.results == nil {
			return nil, fmt.Errorf("middleware: WrapResultCache returned a nil ResultCache")
		}
	}
	for _, col := range ds.FilterCols {
		if !t.HasColumn(col) {
			continue
		}
		switch t.Col(col).Type {
		case engine.ColText:
			if s.textCol == "" {
				s.textCol = col
			}
		case engine.ColTime:
			if s.timeCol == "" {
				s.timeCol = col
			}
		case engine.ColPoint:
			if s.geoCol == "" {
				s.geoCol = col
			}
		}
	}
	if s.timeCol == "" && s.geoCol == "" {
		return nil, fmt.Errorf("middleware: dataset %q has neither a time nor a point filter column", ds.Name)
	}
	ing, err := engine.NewIngestor(ds.DB, ds.Main, cfg.Ingest)
	if err != nil {
		return nil, err
	}
	ing.SetOnFlush(func(fs engine.FlushStats) {
		s.metrics.ingestRows.Add(int64(fs.Rows))
		s.metrics.ingestFlushes.Add(1)
		s.metrics.flushLatency.observe(fs.Took)
	})
	s.ingest = ing
	// Correctness under ingest comes from version-carrying cache keys; this
	// hook only reclaims the memory of entries the new version orphaned. It
	// fires for any flush on the shared DB, including one applied through a
	// different replica's ingestor.
	ds.DB.OnFlush(func(table string, version uint64) {
		if table != s.DS.Main {
			return
		}
		s.lookups.InvalidateTable(table)
		if t := ds.DB.Table(table); t != nil {
			for _, sample := range t.Samples {
				s.lookups.InvalidateTable(sample.Name)
			}
		}
	})
	return s, nil
}

// DataVersion returns the current data version of the server's main table.
// The cluster tier reads it to reject cross-version peer-cache traffic.
func (s *Server) DataVersion() uint64 { return s.table.DataVersion() }

// Ingestor exposes the server's ingest batcher (tests and tooling).
func (s *Server) Ingestor() *engine.Ingestor { return s.ingest }

// IngestResult reports what one Ingest call did.
type IngestResult struct {
	// Accepted is the number of rows buffered (all or none).
	Accepted int `json:"accepted"`
	// Flushed reports whether the rows are already applied and visible.
	Flushed bool `json:"flushed"`
	// Version is the table's data version after the call — the version the
	// rows are (or will be) visible at only when Flushed is true.
	Version uint64 `json:"version"`
	// Pending is the buffered row count still awaiting a flush.
	Pending int `json:"pending"`
}

// Ingest appends rows (the JSON wire form, converted via
// workload.RowsToBatch) through the adaptive batcher. sync forces a flush
// before returning, so the rows are visible — and every cache layer is on
// the new version — when the call returns.
func (s *Server) Ingest(rows []map[string]any, sync bool) (IngestResult, error) {
	b, err := workload.RowsToBatch(s.DS, rows)
	if err != nil {
		return IngestResult{}, badRequestf("bad ingest rows: %v", err)
	}
	flushed, err := s.ingest.Add(b)
	if err != nil {
		return IngestResult{}, badRequestf("ingest rejected: %v", err)
	}
	if sync && !flushed {
		if _, err := s.ingest.Flush(); err != nil {
			return IngestResult{}, err
		}
		flushed = true
	}
	return IngestResult{
		Accepted: len(rows),
		Flushed:  flushed,
		Version:  s.table.DataVersion(),
		Pending:  s.ingest.Pending(),
	}, nil
}

// Config returns the normalized serving configuration.
func (s *Server) Config() ServerConfig { return s.cfg }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// BuildQuery translates a request into the engine query.
func (s *Server) BuildQuery(req Request) (*engine.Query, error) {
	q := &engine.Query{Table: s.DS.Main, OutputCols: append([]string(nil), s.DS.OutputCols...)}
	var preds []engine.Predicate
	if req.Keyword != "" {
		if s.textCol == "" {
			return nil, badRequestf("dataset has no text column for keyword %q", req.Keyword)
		}
		id := s.table.Vocab.ID(req.Keyword)
		if id == 0 {
			return nil, badRequestf("unknown keyword %q", req.Keyword)
		}
		preds = append(preds, engine.Predicate{
			Col: s.textCol, Kind: engine.PredKeyword, Word: id, WordText: req.Keyword,
		})
	}
	if !req.From.IsZero() || !req.To.IsZero() {
		if s.timeCol == "" {
			return nil, badRequestf("dataset has no time column")
		}
		preds = append(preds, engine.Predicate{
			Col: s.timeCol, Kind: engine.PredRange,
			Lo: float64(req.From.UnixMilli()), Hi: float64(req.To.UnixMilli()),
		})
	}
	if req.Region.Area() > 0 {
		if s.geoCol == "" {
			return nil, badRequestf("dataset has no point column")
		}
		preds = append(preds, engine.Predicate{Col: s.geoCol, Kind: engine.PredGeo, Box: req.Region})
	}
	if len(preds) == 0 {
		return nil, badRequestf("request has no conditions")
	}
	q.Preds = preds
	return q, nil
}

// Handle serves one request end to end: build SQL, rewrite under the
// budget, execute the chosen rewritten query, bin the result — reusing
// cached plans and results where possible.
//
// The returned Response may be shared with the result cache and with
// concurrent requests for the same shape: treat it as immutable. (Disable
// the result cache via ServerConfig to get per-call private responses.)
func (s *Server) Handle(req Request) (*Response, error) {
	resp, _, err := s.handle(context.Background(), req, false)
	return resp, err
}

// maxPrefetchWait caps how long a speculative request may sit in the
// admission queue's prefetch lane. Predictions go stale fast (the user pans
// again); a prefetch that can't start promptly is better shed than queued
// into irrelevance.
const maxPrefetchWait = 250 * time.Millisecond

// Prefetch speculatively warms the result cache with req, admitted through
// the prefetch lane (idle capacity only; shed first under load — a
// prefetch can never cause a rejection a live request wouldn't have seen).
// The staleness hint is stripped: speculative entries are only ever stored
// under the current data version, never reachable solely via `/* ttl:N */`.
// No-op when the result cache is disabled (nothing to warm).
func (s *Server) Prefetch(req Request) {
	if s.flight == nil {
		return
	}
	s.metrics.prefetchIssued.Add(1)
	req.TTL = 0
	wait := s.cfg.QueueTimeout
	if wait > maxPrefetchWait {
		wait = maxPrefetchWait
	}
	if s.admit.acquirePrefetch(wait) != admitOK {
		s.metrics.prefetchShed.Add(1)
		return
	}
	defer s.admit.releasePrefetch()
	_, _, _ = s.handle(context.Background(), req, true)
}

// effectiveBudget resolves a request's budget: zero/negative falls back to
// the server default. Admission deadlines, the rewrite decision, and the
// result-cache key all use this one resolution.
func (s *Server) effectiveBudget(req Request) float64 {
	if req.BudgetMs > 0 {
		return req.BudgetMs
	}
	return s.cfg.DefaultBudgetMs
}

// planned is one request resolved through the plan cache and the rewriter:
// everything handle needs before touching the result cache, and everything
// ResultKeyFor needs to name the request's result.
type planned struct {
	budget   float64
	sig      string
	out      core.Outcome
	rq       *engine.Query
	hint     engine.Hint
	optLabel string
	rkey     ResultKey
	fam      famKey
}

// plan resolves a request to its rewrite decision and result-cache key
// without executing anything: build the query, reuse (or build) the shape's
// ground-truth context, memoize the per-budget rewrite decision, and derive
// the ResultKey. count selects whether the plan-cache counters observe this
// resolution — the serving path counts, the routing-side key computation
// (Server.ResultKeyFor) does not, so a request keyed on one replica and
// served on another is not double-counted. background marks a speculative
// resolution: a cold context build (|Ω|+1 engine executions) then runs with
// a cooperative yield so it cannot hold a processor against live requests.
// The built context is bit-identical either way — a live request coalescing
// onto a background build gets exactly the context it would have built.
//
// Callers must hold the DB's data read lock (see handle): the plan-cache key
// and the ResultKey both embed the data version, and the version must stay
// paired with the data the context build reads.
func (s *Server) plan(req Request, count, background bool) (planned, error) {
	p := planned{budget: s.effectiveBudget(req)}
	q, err := s.BuildQuery(req)
	if err != nil {
		return p, err
	}
	version := s.table.DataVersion()

	kind := req.Kind
	switch kind {
	case VizScatter, VizCount, VizDistinct:
	default:
		kind = VizHeatmap
	}
	if kind == VizDistinct && s.textCol == "" {
		return p, badRequestf("dataset has no text column for a distinct-words request")
	}
	gw, gh := req.GridW, req.GridH
	if kind == VizCount || kind == VizDistinct {
		// Aggregate answers have no grid; zeroing it keeps stray grid params
		// from splitting otherwise-identical cache keys.
		gw, gh = 0, 0
	} else {
		if gw <= 0 {
			gw = 64
		}
		if gh <= 0 {
			gh = 64
		}
	}
	if kind == VizDistinct {
		// Snap the time window to the sketch's bucket lattice, so the exact
		// and HLL options of one distinct request count the same row set (the
		// summaries only resolve whole buckets). The aligned window is a
		// deterministic function of (table, request) — every replica computes
		// the same one, so routing keys stay consistent.
		if sk := s.table.Sketch; sk != nil {
			for i := range q.Preds {
				if q.Preds[i].Kind == engine.PredRange && q.Preds[i].Col == sk.TimeCol {
					alo, ahi := sk.AlignWindow(int64(q.Preds[i].Lo), int64(q.Preds[i].Hi))
					q.Preds[i].Lo, q.Preds[i].Hi = float64(alo), float64(ahi)
				}
			}
		}
	}

	// Plan cache: one ground-truth context per (data version, query shape),
	// built once even under a stampede of identical requests. The version
	// prefix retires every pre-flush context at a flush — ground truth (row
	// counts, selectivities, per-option timings) is data-dependent, so a
	// stale context would mis-plan and, worse, mis-trace post-flush answers.
	// Trace.SQL stays the pure signature.
	//
	// Aggregate kinds get their own key class: their option space is filtered
	// differently (see spaceFor), so a count request and a heatmap request
	// over the same SQL shape must not share a context. Viz kinds keep the
	// original key format — their space is identical to the server's whenever
	// it holds no sketch rules, which preserves every pre-tier key byte.
	p.sig = q.SQL(engine.Hint{})
	class := ""
	switch kind {
	case VizCount:
		class = "#count\x00"
	case VizDistinct:
		class = "#distinct\x00"
	}
	planKey := fmt.Sprintf("v%d\x00%s%s", version, class, p.sig)
	entry, how, err := s.plans.get(planKey, !background, func(boost *atomic.Bool) (*core.QueryContext, error) {
		ccfg := core.DefaultContextConfig(s.spaceFor(kind))
		ccfg.Lookups = s.lookups
		if background {
			ccfg.Yield = s.backgroundYield(boost)
		}
		return core.BuildContext(s.DS.DB, q, ccfg)
	})
	if count {
		switch how {
		case planHit:
			s.metrics.planHits.Add(1)
		case planCoalesced:
			s.metrics.planCoalesced.Add(1)
		default:
			s.metrics.planMisses.Add(1)
		}
	}
	if err != nil {
		return p, err
	}
	ctx := entry.ctx

	// Per-budget rewrite decision, memoized on the entry. The rewrite
	// itself is serialized (see rewriteMu).
	p.out = entry.outcome(p.budget, func() core.Outcome {
		s.rewriteMu.Lock()
		defer s.rewriteMu.Unlock()
		return s.Rewriter.Rewrite(ctx, p.budget)
	})

	p.rq, p.hint = q, engine.Hint{}
	p.optLabel = "original"
	if p.out.Option >= 0 {
		p.rq, p.hint = core.BuildRQ(q, ctx.Options[p.out.Option], ctx.EstRows, ctx.Scale)
		p.optLabel = ctx.Options[p.out.Option].Label(len(q.Preds))
	}

	p.rkey = ResultKey{
		SQL: p.rq.SQL(p.hint), Kind: kind, GridW: gw, GridH: gh,
		Region: s.regionOrExtent(req), Budget: p.budget, DataVersion: version,
		Approx: approxTag(p.rq),
	}
	// The subsumption family: everything the key pins except the
	// region/grid geometry. Time bounds collapse to the same instants the
	// query predicate uses, so two spellings of one window share a family.
	// The approximation tag keeps fidelity classes apart even here — an
	// approximate in-flight execution must never look like a containment
	// candidate for an exact request (or vice versa).
	p.fam = famKey{
		keyword: req.Keyword,
		fromMs:  req.From.UnixMilli(),
		toMs:    req.To.UnixMilli(),
		kind:    kind,
		budget:  p.budget,
		version: version,
		approx:  p.rkey.Approx,
	}
	return p, nil
}

// spaceFor filters the server's rewrite-option space to the rules that can
// answer a given visualization kind: grid/point kinds need row-producing
// options (sketch aggregates return no points), counts need count-unbiased
// options (LIMIT truncates, HLL answers a different aggregate), and distinct
// requests can only be approximated by HLL. Exact hint options always stay.
func (s *Server) spaceFor(kind VizKind) core.SpaceSpec {
	sp := s.Space
	if len(sp.ApproxRules) == 0 {
		return sp
	}
	keep := func(k core.ApproxKind) bool {
		switch kind {
		case VizCount:
			return k != core.ApproxLimit && k != core.ApproxHLL
		case VizDistinct:
			return k == core.ApproxHLL
		default:
			return k != core.ApproxCMS && k != core.ApproxHLL
		}
	}
	filtered := sp.ApproxRules[:0:0]
	for _, r := range sp.ApproxRules {
		if keep(r.Kind) {
			filtered = append(filtered, r)
		}
	}
	sp.ApproxRules = filtered
	return sp
}

// approxTag renders a rewritten query's approximation clause as the cache
// key's fidelity fingerprint: empty for exact queries, else a short
// (method, parameters, seed) tag. The rewritten SQL already differs per
// option, but the tag is what lets every cache layer — result cache,
// subsumption, single-flight, cluster peer fetch — refuse cross-fidelity
// answers without parsing SQL.
func approxTag(rq *engine.Query) string {
	switch rq.Approx.Method {
	case engine.ApproxRows:
		return fmt.Sprintf("rows:%g:%d", rq.Approx.Rate, rq.Approx.Seed)
	case engine.ApproxReservoir:
		return fmt.Sprintf("res:%d:%d", rq.Approx.K, rq.Approx.Seed)
	case engine.ApproxSketchCount:
		return "cms"
	case engine.ApproxSketchDistinct:
		return "hll"
	}
	switch {
	case rq.SamplePercent > 0:
		return fmt.Sprintf("sample:%d", rq.SamplePercent)
	case rq.Limit > 0:
		return fmt.Sprintf("limit:%d", rq.Limit)
	}
	return ""
}

// ResultKeyFor resolves a request to the result-cache key the serving path
// would use, without executing or touching the result cache. The key is a
// deterministic function of (dataset, request, budget) — every replica
// computes the same one — which is what lets the cluster routing tier send
// a request to the replica that owns its key (one key space for routing and
// peer ownership). Cold shapes pay the ground-truth context build here,
// exactly as serving them would; warm shapes are two cache lookups.
func (s *Server) ResultKeyFor(req Request) (ResultKey, error) {
	s.DS.DB.RLockData()
	defer s.DS.DB.RUnlockData()
	p, err := s.plan(req, false, false)
	return p.rkey, err
}

// maxStaleProbes caps how many historical versions a ttl-hinted request may
// probe in the result cache — the "bounded version window" of the staleness
// contract.
const maxStaleProbes = 8

// responseShell builds a response with the planned request's own trace,
// leaving Bins/Points for the caller. A sliced (subsumed) response and a
// directly-executed one therefore carry identical traces: the plan runs for
// every request either way, and every trace field is a deterministic
// function of (data version, shape, budget) — never of how the bins were
// obtained.
func responseShell(p planned) *Response {
	return &Response{
		Kind:  p.rkey.Kind,
		GridW: p.rkey.GridW,
		GridH: p.rkey.GridH,
		Trace: Trace{
			SQL:          p.sig,
			RewrittenSQL: p.rkey.SQL,
			Option:       p.optLabel,
			BudgetMs:     p.budget,
			PlanMs:       p.out.PlanMs,
			ExecMs:       p.out.ExecMs,
			TotalMs:      p.out.TotalMs,
			Viable:       p.out.Viable,
			Quality:      p.out.Quality,
			NumExplored:  p.out.Explored,
		},
	}
}

// handle is Handle plus a flag reporting whether the response came without
// executing here (cache hit, subsumption slice, or a coalesced in-flight
// execution — surfaced as the X-Cache header). prefetch marks the
// speculative path: plan-cache and result-cache counters skip it, computed
// entries are remembered so their first live consumer counts as a prefetch
// hit, and staleness hints never apply (Server.Prefetch strips TTL).
//
// ctx is the request's cancellation scope: when it has a Done channel (the
// HTTP path passes r.Context()), the execution checks it at every yield
// stride and aborts once the client is gone — a disconnected pan/zoom burst
// must not keep burning worker slots on answers nobody will read. Cache and
// plan layers are unaffected; only the engine execution is cancelable.
//
// The whole plan+probe+execute sequence runs under the DB's data read lock,
// so it observes exactly one (data, version) pair: an ingest flush either
// happens entirely before this request (which then plans, executes, and
// caches at the new version) or entirely after it. That lock is what turns
// "version-stamped keys" into the stale-read guarantee.
func (s *Server) handle(ctx context.Context, req Request, prefetch bool) (*Response, bool, error) {
	s.DS.DB.RLockData()
	defer s.DS.DB.RUnlockData()
	p, err := s.plan(req, !prefetch, prefetch)
	if err != nil {
		return nil, false, err
	}

	// Result cache: repeated (rewritten SQL, kind, grid, region, budget,
	// version) shapes skip execution and binning entirely. In a cluster, Get
	// may be answered by the key's owning replica's cache (internal/cluster).
	rkey := p.rkey
	if resp := s.results.Get(rkey); resp != nil {
		if !prefetch {
			s.metrics.resultHits.Add(1)
			s.notePrefetchHit(rkey)
			s.noteOutcome(resp)
		}
		return resp, true, nil
	}
	// Staleness-tolerance hint: probe bounded-recent versions before paying
	// for execution. Strictly a wider lookup — a stale hit is served as-is
	// (its trace and bins are exactly the old version's answer) and nothing
	// is ever stored under an old version's key. Subsumption never joins in
	// here: containment candidates live at the current version only.
	if req.TTL > 0 && !prefetch {
		versions := s.table.VersionsWithin(req.TTL, s.cfg.Now())
		if len(versions) > maxStaleProbes+1 {
			versions = versions[:maxStaleProbes+1]
		}
		for _, v := range versions[1:] { // [0] is current, already probed
			k := rkey
			k.DataVersion = v
			if resp := s.results.Get(k); resp != nil {
				s.metrics.resultHits.Add(1)
				s.metrics.staleHits.Add(1)
				s.noteOutcome(resp)
				return resp, true, nil
			}
		}
	}

	// Containment: a cached result whose region contains this one, with
	// exactly-aligned cells, answers by slicing — byte-identical to direct
	// execution (see subsume.go).
	if resp := s.subsumeFromCache(p, prefetch); resp != nil {
		if !prefetch {
			s.metrics.resultHits.Add(1)
			s.noteOutcome(resp)
		}
		return resp, true, nil
	}

	// Single-flight: join an identical in-flight execution, or — for
	// heatmaps — a strictly-containing aligned one whose result this
	// request can slice. If the primary dies without publishing, fall
	// through and execute directly (unregistered, so no waiter chain forms
	// behind a retry).
	var call *execCall
	if s.flight != nil {
		c, primary, ox, oy, exactJoin := s.flight.join(p, prefetch, s.regions != nil)
		if !primary {
			if !prefetch {
				// Waiting on a (possibly speculative) in-flight execution:
				// boost it out of background parking — see execCall.boost.
				c.boost.Store(true)
			}
			<-c.done
			if c.err == nil {
				if !prefetch && s.flight.claimPrefetchCredit(c) {
					s.metrics.prefetchHits.Add(1)
				}
				if exactJoin {
					if !prefetch {
						s.metrics.execCoalesced.Add(1)
						s.metrics.resultHits.Add(1)
						s.noteOutcome(c.resp)
					}
					return c.resp, true, nil
				}
				resp := responseShell(p)
				resp.Bins = sliceBins(c.resp.Bins, c.gw, ox, oy, p.rkey.GridW, p.rkey.GridH)
				s.putResult(p, resp, prefetch)
				if !prefetch {
					s.metrics.subsumedHits.Add(1)
					s.metrics.resultHits.Add(1)
					s.noteOutcome(resp)
				}
				return resp, true, nil
			}
		} else {
			call = c
		}
	}
	if !prefetch {
		s.metrics.resultMisses.Add(1)
	}

	resp, err := func() (resp *Response, err error) {
		if call != nil {
			// Publish whatever happened — including a panic unwinding —
			// so waiters never hang (nil/nil is normalized to an abort
			// error and waiters re-execute themselves).
			defer func() { s.flight.finish(call, resp, err) }()
		}
		// Speculative executions run at background priority: between scan
		// chunks they park while live requests are active (see
		// backgroundYield), so a concurrently arriving live request is never
		// stuck behind a prefetch for a scheduler quantum.
		var yield func()
		if prefetch {
			var boost *atomic.Bool
			if call != nil {
				boost = &call.boost
			}
			yield = s.backgroundYield(boost)
		} else if ctx.Done() != nil {
			yield = s.cancelYield(ctx)
		}
		res, _, err := s.DS.DB.RunCachedYield(p.rq, p.hint, s.lookups, yield)
		if err != nil {
			return nil, err
		}
		resp = responseShell(p)
		switch rkey.Kind {
		case VizScatter:
			resp.Points = res.Points
		case VizCount:
			v := res.AggValue
			if !res.HasAgg {
				// Exact and row-level-sampled paths: the (possibly scaled)
				// matched-row estimate. Reservoirs report matched/K · K ==
				// the exact matched count.
				v = res.Weight * float64(len(res.RowIDs))
				if res.MatchedRows > 0 {
					v = float64(res.MatchedRows)
				}
			}
			resp.Value = &v
		case VizDistinct:
			v := res.AggValue
			if !res.HasAgg {
				v = float64(engine.DistinctWordsExact(s.table, res.RowIDs, s.textCol))
			}
			resp.Value = &v
		default:
			grid := viz.NewGrid(rkey.Region, rkey.GridW, rkey.GridH)
			resp.Bins = grid.Counts(res.Points, res.Weight)
		}
		annotateApprox(resp, p, res)
		return resp, nil
	}()
	if err != nil {
		return nil, false, err
	}
	// A speculative execution a live request already rode (claimed its
	// credit mid-flight) is consumed, not pending: don't re-mark it.
	mark := prefetch && (call == nil || !s.flight.wasClaimed(call))
	s.putResult(p, resp, mark)
	if prefetch {
		s.metrics.prefetchComputed.Add(1)
	} else {
		s.noteOutcome(resp)
	}
	return resp, false, nil
}

// backgroundNap is one parking interval of a paused background execution;
// maxBackgroundPause caps the total parked time per execution (or context
// build). The cap matters for lock safety, not fairness: a background
// execution holds the DB's data read lock, and an ingest flush (writer)
// queued behind it blocks *new* readers — so an unbounded pause waiting for
// live readers to drain could deadlock with the readers waiting on the
// writer. Bounded, the worst case is a short stall before the prefetch
// proceeds at plain Gosched priority.
const (
	backgroundNap      = time.Millisecond
	maxBackgroundPause = 100 * time.Millisecond
)

// liveCooldown extends the live-activity window past a request's completion
// so background work stays parked while the response drains to the client
// (and, on a co-located load generator, while the client goroutine consumes
// it). A few milliseconds cover those handoffs; against interactive think
// times it costs the prefetcher a negligible slice of idle time.
const liveCooldown = 3 * time.Millisecond

// liveBusy is the parking signal for background work: a live request holds
// or awaits an admission slot, is anywhere inside the HTTP handler, or
// finished less than liveCooldown ago.
func (s *Server) liveBusy() bool {
	if s.admit.livePressure() || s.liveHTTP.Load() > 0 {
		return true
	}
	last := s.lastLiveNs.Load()
	return last != 0 && s.cfg.Now().UnixNano()-last < int64(liveCooldown)
}

// backgroundYield returns the cooperative-yield hook for one speculative
// execution or plan build. While any live request is active (see liveBusy),
// the hook parks in short naps — handing the processor to the live request
// entirely, not merely sharing it — up to a total pause budget; otherwise
// (and after the budget) it degrades to runtime.Gosched. This is the
// CPU-time half of the prefetch lane's "idle capacity only" contract; the
// admission half (reserve slot, hold cap, shed-first queue) lives in
// admission.go.
//
// boost (nil allowed) breaks a would-be livelock: when a live request
// coalesces onto THIS speculative computation (single-flight or plan-cache
// join), its wait keeps liveBusy true while it blocks on our completion —
// parking would have the waiter waiting on the parker, for the full pause
// budget. The joiner sets boost; the hook sees it and stops parking for
// good.
func (s *Server) backgroundYield(boost *atomic.Bool) func() {
	pause := maxBackgroundPause
	return func() {
		if boost != nil && boost.Load() {
			runtime.Gosched()
			return
		}
		for pause > 0 && s.liveBusy() {
			if boost != nil && boost.Load() {
				break
			}
			time.Sleep(backgroundNap)
			pause -= backgroundNap
		}
		runtime.Gosched()
	}
}

// cancelYield returns the live path's cooperative-cancellation hook: each
// executor yield checks whether the request's context is done (client
// disconnected, caller deadline blown) and aborts the zombie execution
// instead of finishing an answer nobody will read. Virtual budgets
// deliberately do not cancel — a blown budget still wants its (non-viable)
// answer — so the only trigger is the context itself. When the hook never
// fires, execution is byte-identical to an unhooked run (pinned by
// TestCancelCheckYieldPreservesResults in the engine).
func (s *Server) cancelYield(ctx context.Context) func() {
	return func() {
		select {
		case <-ctx.Done():
			s.metrics.execCanceled.Add(1)
			engine.AbortExec(fmt.Errorf("%w: %v", engine.ErrExecCanceled, context.Cause(ctx)))
		default:
		}
	}
}

// ResultCache exposes the server's (possibly wrapped) result cache for
// diagnostics — cluster peer endpoints answer fetches from it directly.
func (s *Server) ResultCache() ResultCache { return s.results }

// noteOutcome updates per-response serving metrics.
func (s *Server) noteOutcome(resp *Response) {
	if !resp.Trace.Viable {
		s.metrics.budgetViolations.Add(1)
	}
	if resp.Approximate {
		s.metrics.approxServed.Add(1)
	}
}

// annotateApprox stamps an executed response with its approximation
// contract. Exact executions (empty fingerprint) are left untouched, so
// their encoded bytes cannot change.
func annotateApprox(resp *Response, p planned, res *engine.Result) {
	if p.rkey.Approx == "" {
		return
	}
	resp.Approximate = true
	meta := &ApproxMeta{Fingerprint: p.rkey.Approx}
	switch p.rq.Approx.Method {
	case engine.ApproxRows:
		meta.Method = "rows"
		meta.Bound = "two-sided"
		meta.Confidence = 0.95
		meta.CIHalfWidth = engine.SampleCountCI(res.SampledRows, p.rq.Approx.Rate, 1.96)
	case engine.ApproxReservoir:
		// The matched count is exact; only per-cell values are scaled.
		meta.Method = "reservoir"
		meta.Bound = "exact-count"
	case engine.ApproxSketchCount:
		meta.Method = "cms"
		meta.Bound = "overestimate"
		meta.CIHalfWidth = res.AggBound
	case engine.ApproxSketchDistinct:
		meta.Method = "hll"
		meta.Bound = "two-sided"
		meta.Confidence = 0.95
		meta.CIHalfWidth = res.AggBound
	default:
		switch {
		case p.rq.SamplePercent > 0:
			meta.Method = "sample"
			meta.Bound = "two-sided"
			meta.Confidence = 0.95
			meta.CIHalfWidth = engine.SampleCountCI(len(res.RowIDs), float64(p.rq.SamplePercent)/100, 1.96)
		case p.rq.Limit > 0:
			meta.Method = "limit"
			meta.Bound = "truncation"
		}
	}
	resp.Approx = meta
}

func (s *Server) regionOrExtent(req Request) engine.Rect {
	if req.Region.Area() > 0 {
		return req.Region
	}
	return s.DS.Extent
}
