// Package middleware implements the paper's Fig. 5 architecture: a
// visualization middleware that translates frontend requests into SQL
// queries, rewrites them with the MDP-based Query Rewriter so the total
// response time stays within a budget, executes them on the backend engine,
// and returns binned visualization results.
package middleware

import (
	"fmt"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/viz"
	"github.com/maliva/maliva/internal/workload"
)

// VizKind selects the visualization type of a request.
type VizKind string

const (
	// VizHeatmap returns per-cell counts.
	VizHeatmap VizKind = "heatmap"
	// VizScatter returns raw points.
	VizScatter VizKind = "scatter"
)

// Request is a frontend visualization request (the running example of §1:
// "tweets containing <keyword> in <region> during <time range>").
type Request struct {
	Keyword  string      `json:"keyword"`
	From     time.Time   `json:"from"`
	To       time.Time   `json:"to"`
	Region   engine.Rect `json:"region"`
	Kind     VizKind     `json:"kind"`
	GridW    int         `json:"grid_w"`
	GridH    int         `json:"grid_h"`
	BudgetMs float64     `json:"budget_ms"`
}

// Response is the visualization result plus a trace of what the middleware
// did — useful for demos and debugging.
type Response struct {
	Kind   VizKind         `json:"kind"`
	Bins   map[int]float64 `json:"bins,omitempty"`
	Points []engine.Point  `json:"points,omitempty"`
	GridW  int             `json:"grid_w"`
	GridH  int             `json:"grid_h"`
	Trace  Trace           `json:"trace"`
}

// Trace records the rewriting decision for a request.
type Trace struct {
	SQL          string  `json:"sql"`
	RewrittenSQL string  `json:"rewritten_sql"`
	Option       string  `json:"option"`
	PlanMs       float64 `json:"plan_ms"`
	ExecMs       float64 `json:"exec_ms"`
	TotalMs      float64 `json:"total_ms"`
	Viable       bool    `json:"viable"`
	Quality      float64 `json:"quality"`
	NumExplored  int     `json:"num_explored"`
}

// Server is the Maliva middleware bound to one dataset and one rewriter.
type Server struct {
	DS       *workload.Dataset
	Rewriter core.Rewriter
	Space    core.SpaceSpec
	// DefaultBudgetMs applies when a request has no budget.
	DefaultBudgetMs float64
}

// NewServer creates a middleware over a dataset using the given rewriter.
func NewServer(ds *workload.Dataset, rw core.Rewriter, space core.SpaceSpec, defaultBudgetMs float64) *Server {
	return &Server{DS: ds, Rewriter: rw, Space: space, DefaultBudgetMs: defaultBudgetMs}
}

// BuildQuery translates a request into the engine query.
func (s *Server) BuildQuery(req Request) (*engine.Query, error) {
	t := s.DS.DB.Table(s.DS.Main)
	if t == nil {
		return nil, fmt.Errorf("middleware: dataset has no table %q", s.DS.Main)
	}
	q := &engine.Query{Table: s.DS.Main, OutputCols: append([]string(nil), s.DS.OutputCols...)}
	var preds []engine.Predicate
	if req.Keyword != "" {
		id := t.Vocab.ID(req.Keyword)
		if id == 0 {
			return nil, fmt.Errorf("middleware: unknown keyword %q", req.Keyword)
		}
		preds = append(preds, engine.Predicate{
			Col: s.DS.FilterCols[0], Kind: engine.PredKeyword, Word: id, WordText: req.Keyword,
		})
	}
	if !req.From.IsZero() || !req.To.IsZero() {
		timeCol := ""
		for _, col := range s.DS.FilterCols {
			if t.HasColumn(col) && t.Col(col).Type == engine.ColTime {
				timeCol = col
				break
			}
		}
		if timeCol == "" {
			return nil, fmt.Errorf("middleware: dataset has no time column")
		}
		preds = append(preds, engine.Predicate{
			Col: timeCol, Kind: engine.PredRange,
			Lo: float64(req.From.UnixMilli()), Hi: float64(req.To.UnixMilli()),
		})
	}
	if req.Region.Area() > 0 {
		geoCol := ""
		for _, col := range s.DS.FilterCols {
			if t.HasColumn(col) && t.Col(col).Type == engine.ColPoint {
				geoCol = col
				break
			}
		}
		if geoCol == "" {
			return nil, fmt.Errorf("middleware: dataset has no point column")
		}
		preds = append(preds, engine.Predicate{Col: geoCol, Kind: engine.PredGeo, Box: req.Region})
	}
	if len(preds) == 0 {
		return nil, fmt.Errorf("middleware: request has no conditions")
	}
	q.Preds = preds
	return q, nil
}

// Handle serves one request end to end: build SQL, rewrite under the
// budget, execute the chosen rewritten query, bin the result.
func (s *Server) Handle(req Request) (*Response, error) {
	budget := req.BudgetMs
	if budget <= 0 {
		budget = s.DefaultBudgetMs
	}
	q, err := s.BuildQuery(req)
	if err != nil {
		return nil, err
	}
	ctx, err := core.BuildContext(s.DS.DB, q, core.DefaultContextConfig(s.Space))
	if err != nil {
		return nil, err
	}
	out := s.Rewriter.Rewrite(ctx, budget)

	// Execute the chosen rewritten query for the actual visual result.
	rq, hint := q, engine.Hint{}
	optLabel := "original"
	if out.Option >= 0 {
		rq, hint = core.BuildRQ(q, ctx.Options[out.Option], ctx.EstRows, ctx.Scale)
		optLabel = ctx.Options[out.Option].Label(len(q.Preds))
	}
	res, _, err := s.DS.DB.Run(rq, hint)
	if err != nil {
		return nil, err
	}

	gw, gh := req.GridW, req.GridH
	if gw <= 0 {
		gw = 64
	}
	if gh <= 0 {
		gh = 64
	}
	resp := &Response{
		Kind:  req.Kind,
		GridW: gw,
		GridH: gh,
		Trace: Trace{
			SQL:          q.SQL(engine.Hint{}),
			RewrittenSQL: rq.SQL(hint),
			Option:       optLabel,
			PlanMs:       out.PlanMs,
			ExecMs:       out.ExecMs,
			TotalMs:      out.TotalMs,
			Viable:       out.Viable,
			Quality:      out.Quality,
			NumExplored:  out.Explored,
		},
	}
	switch req.Kind {
	case VizScatter:
		resp.Points = res.Points
	default:
		resp.Kind = VizHeatmap
		grid := viz.NewGrid(s.regionOrExtent(req), gw, gh)
		resp.Bins = grid.Counts(res.Points, res.Weight)
	}
	return resp, nil
}

func (s *Server) regionOrExtent(req Request) engine.Rect {
	if req.Region.Area() > 0 {
		return req.Region
	}
	return s.DS.Extent
}
