package middleware

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/viz"
	"github.com/maliva/maliva/internal/workload"
)

// VizKind selects the visualization type of a request.
type VizKind string

const (
	// VizHeatmap returns per-cell counts.
	VizHeatmap VizKind = "heatmap"
	// VizScatter returns raw points.
	VizScatter VizKind = "scatter"
)

// Request is a frontend visualization request (the running example of §1:
// "tweets containing <keyword> in <region> during <time range>").
type Request struct {
	Keyword  string      `json:"keyword"`
	From     time.Time   `json:"from"`
	To       time.Time   `json:"to"`
	Region   engine.Rect `json:"region"`
	Kind     VizKind     `json:"kind"`
	GridW    int         `json:"grid_w"`
	GridH    int         `json:"grid_h"`
	BudgetMs float64     `json:"budget_ms"`
	// TTL is the request's staleness tolerance (the parsed form of the
	// `/* ttl:N */` wire hint): zero demands the current data version, a
	// positive value lets the server answer from a cached result computed at
	// any data version that was current within the last TTL of wall time.
	// TTL only widens the result-cache probe — it never changes what gets
	// computed or stored.
	TTL time.Duration `json:"ttl,omitempty"`
}

// Response is the visualization result plus a trace of what the middleware
// did — useful for demos and debugging.
type Response struct {
	Kind   VizKind         `json:"kind"`
	Bins   map[int]float64 `json:"bins,omitempty"`
	Points []engine.Point  `json:"points,omitempty"`
	GridW  int             `json:"grid_w"`
	GridH  int             `json:"grid_h"`
	Trace  Trace           `json:"trace"`
}

// Trace records the rewriting decision for a request.
type Trace struct {
	SQL          string  `json:"sql"`
	RewrittenSQL string  `json:"rewritten_sql"`
	Option       string  `json:"option"`
	BudgetMs     float64 `json:"budget_ms"`
	PlanMs       float64 `json:"plan_ms"`
	ExecMs       float64 `json:"exec_ms"`
	TotalMs      float64 `json:"total_ms"`
	Viable       bool    `json:"viable"`
	Quality      float64 `json:"quality"`
	NumExplored  int     `json:"num_explored"`
}

// ServerConfig sizes the serving layer. The zero value of each field picks
// the default noted on it; a negative size disables that subsystem.
type ServerConfig struct {
	// DefaultBudgetMs applies when a request has no budget. Default 500.
	DefaultBudgetMs float64
	// PlanCacheSize caps the number of cached query shapes (contexts).
	// Default 512; negative disables the plan cache.
	PlanCacheSize int
	// ResultCacheSize caps the number of cached responses. Default 4096;
	// negative disables the result cache.
	ResultCacheSize int
	// ResultTTL is the result-cache entry lifetime. Default 30s.
	ResultTTL time.Duration
	// CacheShards splits the plan and result caches into independently
	// locked shards selected by key hash, so concurrent traffic (especially
	// a gateway's cross-dataset mix) doesn't serialize on two mutexes.
	// Default 16; 1 restores the single-lock layout. Capacity is the total
	// across shards.
	CacheShards int
	// MaxConcurrent bounds in-flight request execution. Default
	// 4×GOMAXPROCS; negative disables admission control.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a slot; beyond it requests are
	// rejected with 429. Default 256.
	MaxQueue int
	// QueueTimeout caps how long a request may wait for a slot; the
	// effective per-request deadline is min(QueueTimeout, its budget_ms
	// as real time). Default 1s.
	QueueTimeout time.Duration
	// Ingest tunes the server's adaptive ingest batcher (zero values pick
	// the engine defaults; see engine.IngestorConfig).
	Ingest engine.IngestorConfig
	// WrapResultCache, when set, wraps the server's built-in result cache
	// before first use — the extension point internal/cluster uses to layer
	// a peer-aware cache (local miss → fetch from the key's owning replica)
	// over the local sharded cache. It must return a ResultCache honoring
	// the same contract; returning the argument unchanged is a no-op. Not
	// called when the result cache is disabled (ResultCacheSize < 0):
	// layering peer round trips over a cache that drops everything would
	// cost latency and never hit.
	WrapResultCache func(local ResultCache) ResultCache
	// Now overrides the result-cache clock (tests). Default time.Now.
	Now func() time.Time
}

// normalized resolves defaults and disables.
func (c ServerConfig) normalized() ServerConfig {
	if c.DefaultBudgetMs <= 0 {
		c.DefaultBudgetMs = 500
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 512
	}
	if c.ResultCacheSize == 0 {
		c.ResultCacheSize = 4096
	}
	if c.ResultTTL <= 0 {
		c.ResultTTL = 30 * time.Second
	}
	if c.CacheShards <= 0 {
		c.CacheShards = defaultCacheShards
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 256
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// lookupCacheCap bounds the server-scope predicate-lookup cache. Entries
// are keyed on client-supplied predicate values and each pins a row-ID
// slice, so a server facing unbounded distinct shapes must stop memoizing
// at some point (the plan/result caches have LRU caps; this one freezes
// when full, which keeps the canonical-slice aliasing invariant trivially).
const lookupCacheCap = 8192

// Server is the Maliva middleware bound to one dataset and one rewriter.
// It is safe for concurrent use; see ServerConfig for the caching and
// admission knobs.
type Server struct {
	DS       *workload.Dataset
	Rewriter core.Rewriter
	Space    core.SpaceSpec

	cfg   ServerConfig
	table *engine.Table
	// Filter columns resolved once at construction (BuildQuery previously
	// rescanned FilterCols per request).
	textCol, timeCol, geoCol string

	lookups *engine.LookupCache
	plans   *shardedPlanCache
	results ResultCache
	admit   *admission
	metrics *Metrics
	ingest  *engine.Ingestor

	// rewriteMu serializes Rewriter.Rewrite: rewriters are not required to
	// be concurrency-safe (the MDP agent's Q-network reuses forward-pass
	// scratch buffers). Only cold plan-cache paths take it; cached shapes
	// never plan again.
	rewriteMu sync.Mutex
}

// NewServer creates a middleware over a dataset using the given rewriter
// and the default serving configuration. It fails if the dataset is missing
// its main table or has neither a time nor a point filter column (no
// spatio-temporal request could ever be served).
func NewServer(ds *workload.Dataset, rw core.Rewriter, space core.SpaceSpec, defaultBudgetMs float64) (*Server, error) {
	return NewServerWithConfig(ds, rw, space, ServerConfig{DefaultBudgetMs: defaultBudgetMs})
}

// NewServerWithConfig is NewServer with explicit serving knobs.
func NewServerWithConfig(ds *workload.Dataset, rw core.Rewriter, space core.SpaceSpec, cfg ServerConfig) (*Server, error) {
	t := ds.DB.Table(ds.Main)
	if t == nil {
		return nil, fmt.Errorf("middleware: dataset has no table %q", ds.Main)
	}
	cfg = cfg.normalized()
	s := &Server{
		DS:       ds,
		Rewriter: rw,
		Space:    space,
		cfg:      cfg,
		table:    t,
		lookups:  engine.NewLookupCacheWithCap(lookupCacheCap),
		plans:    newShardedPlanCache(cfg.PlanCacheSize, cfg.CacheShards),
		results:  newShardedResultCache(cfg.ResultCacheSize, cfg.CacheShards, cfg.ResultTTL, cfg.Now),
		admit:    newAdmission(cfg.MaxConcurrent, cfg.MaxQueue),
		metrics:  NewMetrics(),
	}
	if cfg.WrapResultCache != nil && s.results.(*shardedResultCache) != nil {
		s.results = cfg.WrapResultCache(s.results)
		if s.results == nil {
			return nil, fmt.Errorf("middleware: WrapResultCache returned a nil ResultCache")
		}
	}
	for _, col := range ds.FilterCols {
		if !t.HasColumn(col) {
			continue
		}
		switch t.Col(col).Type {
		case engine.ColText:
			if s.textCol == "" {
				s.textCol = col
			}
		case engine.ColTime:
			if s.timeCol == "" {
				s.timeCol = col
			}
		case engine.ColPoint:
			if s.geoCol == "" {
				s.geoCol = col
			}
		}
	}
	if s.timeCol == "" && s.geoCol == "" {
		return nil, fmt.Errorf("middleware: dataset %q has neither a time nor a point filter column", ds.Name)
	}
	ing, err := engine.NewIngestor(ds.DB, ds.Main, cfg.Ingest)
	if err != nil {
		return nil, err
	}
	ing.SetOnFlush(func(fs engine.FlushStats) {
		s.metrics.ingestRows.Add(int64(fs.Rows))
		s.metrics.ingestFlushes.Add(1)
		s.metrics.flushLatency.observe(fs.Took)
	})
	s.ingest = ing
	// Correctness under ingest comes from version-carrying cache keys; this
	// hook only reclaims the memory of entries the new version orphaned. It
	// fires for any flush on the shared DB, including one applied through a
	// different replica's ingestor.
	ds.DB.OnFlush(func(table string, version uint64) {
		if table != s.DS.Main {
			return
		}
		s.lookups.InvalidateTable(table)
		if t := ds.DB.Table(table); t != nil {
			for _, sample := range t.Samples {
				s.lookups.InvalidateTable(sample.Name)
			}
		}
	})
	return s, nil
}

// DataVersion returns the current data version of the server's main table.
// The cluster tier reads it to reject cross-version peer-cache traffic.
func (s *Server) DataVersion() uint64 { return s.table.DataVersion() }

// Ingestor exposes the server's ingest batcher (tests and tooling).
func (s *Server) Ingestor() *engine.Ingestor { return s.ingest }

// IngestResult reports what one Ingest call did.
type IngestResult struct {
	// Accepted is the number of rows buffered (all or none).
	Accepted int `json:"accepted"`
	// Flushed reports whether the rows are already applied and visible.
	Flushed bool `json:"flushed"`
	// Version is the table's data version after the call — the version the
	// rows are (or will be) visible at only when Flushed is true.
	Version uint64 `json:"version"`
	// Pending is the buffered row count still awaiting a flush.
	Pending int `json:"pending"`
}

// Ingest appends rows (the JSON wire form, converted via
// workload.RowsToBatch) through the adaptive batcher. sync forces a flush
// before returning, so the rows are visible — and every cache layer is on
// the new version — when the call returns.
func (s *Server) Ingest(rows []map[string]any, sync bool) (IngestResult, error) {
	b, err := workload.RowsToBatch(s.DS, rows)
	if err != nil {
		return IngestResult{}, badRequestf("bad ingest rows: %v", err)
	}
	flushed, err := s.ingest.Add(b)
	if err != nil {
		return IngestResult{}, badRequestf("ingest rejected: %v", err)
	}
	if sync && !flushed {
		if _, err := s.ingest.Flush(); err != nil {
			return IngestResult{}, err
		}
		flushed = true
	}
	return IngestResult{
		Accepted: len(rows),
		Flushed:  flushed,
		Version:  s.table.DataVersion(),
		Pending:  s.ingest.Pending(),
	}, nil
}

// Config returns the normalized serving configuration.
func (s *Server) Config() ServerConfig { return s.cfg }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// BuildQuery translates a request into the engine query.
func (s *Server) BuildQuery(req Request) (*engine.Query, error) {
	q := &engine.Query{Table: s.DS.Main, OutputCols: append([]string(nil), s.DS.OutputCols...)}
	var preds []engine.Predicate
	if req.Keyword != "" {
		if s.textCol == "" {
			return nil, badRequestf("dataset has no text column for keyword %q", req.Keyword)
		}
		id := s.table.Vocab.ID(req.Keyword)
		if id == 0 {
			return nil, badRequestf("unknown keyword %q", req.Keyword)
		}
		preds = append(preds, engine.Predicate{
			Col: s.textCol, Kind: engine.PredKeyword, Word: id, WordText: req.Keyword,
		})
	}
	if !req.From.IsZero() || !req.To.IsZero() {
		if s.timeCol == "" {
			return nil, badRequestf("dataset has no time column")
		}
		preds = append(preds, engine.Predicate{
			Col: s.timeCol, Kind: engine.PredRange,
			Lo: float64(req.From.UnixMilli()), Hi: float64(req.To.UnixMilli()),
		})
	}
	if req.Region.Area() > 0 {
		if s.geoCol == "" {
			return nil, badRequestf("dataset has no point column")
		}
		preds = append(preds, engine.Predicate{Col: s.geoCol, Kind: engine.PredGeo, Box: req.Region})
	}
	if len(preds) == 0 {
		return nil, badRequestf("request has no conditions")
	}
	q.Preds = preds
	return q, nil
}

// Handle serves one request end to end: build SQL, rewrite under the
// budget, execute the chosen rewritten query, bin the result — reusing
// cached plans and results where possible.
//
// The returned Response may be shared with the result cache and with
// concurrent requests for the same shape: treat it as immutable. (Disable
// the result cache via ServerConfig to get per-call private responses.)
func (s *Server) Handle(req Request) (*Response, error) {
	resp, _, err := s.handle(req)
	return resp, err
}

// effectiveBudget resolves a request's budget: zero/negative falls back to
// the server default. Admission deadlines, the rewrite decision, and the
// result-cache key all use this one resolution.
func (s *Server) effectiveBudget(req Request) float64 {
	if req.BudgetMs > 0 {
		return req.BudgetMs
	}
	return s.cfg.DefaultBudgetMs
}

// planned is one request resolved through the plan cache and the rewriter:
// everything handle needs before touching the result cache, and everything
// ResultKeyFor needs to name the request's result.
type planned struct {
	budget   float64
	sig      string
	out      core.Outcome
	rq       *engine.Query
	hint     engine.Hint
	optLabel string
	rkey     ResultKey
}

// plan resolves a request to its rewrite decision and result-cache key
// without executing anything: build the query, reuse (or build) the shape's
// ground-truth context, memoize the per-budget rewrite decision, and derive
// the ResultKey. count selects whether the plan-cache counters observe this
// resolution — the serving path counts, the routing-side key computation
// (Server.ResultKeyFor) does not, so a request keyed on one replica and
// served on another is not double-counted.
//
// Callers must hold the DB's data read lock (see handle): the plan-cache key
// and the ResultKey both embed the data version, and the version must stay
// paired with the data the context build reads.
func (s *Server) plan(req Request, count bool) (planned, error) {
	p := planned{budget: s.effectiveBudget(req)}
	q, err := s.BuildQuery(req)
	if err != nil {
		return p, err
	}
	version := s.table.DataVersion()

	kind := req.Kind
	if kind != VizScatter {
		kind = VizHeatmap
	}
	gw, gh := req.GridW, req.GridH
	if gw <= 0 {
		gw = 64
	}
	if gh <= 0 {
		gh = 64
	}

	// Plan cache: one ground-truth context per (data version, query shape),
	// built once even under a stampede of identical requests. The version
	// prefix retires every pre-flush context at a flush — ground truth (row
	// counts, selectivities, per-option timings) is data-dependent, so a
	// stale context would mis-plan and, worse, mis-trace post-flush answers.
	// Trace.SQL stays the pure signature.
	p.sig = q.SQL(engine.Hint{})
	planKey := fmt.Sprintf("v%d\x00%s", version, p.sig)
	entry, how, err := s.plans.get(planKey, func() (*core.QueryContext, error) {
		ccfg := core.DefaultContextConfig(s.Space)
		ccfg.Lookups = s.lookups
		return core.BuildContext(s.DS.DB, q, ccfg)
	})
	if count {
		switch how {
		case planHit:
			s.metrics.planHits.Add(1)
		case planCoalesced:
			s.metrics.planCoalesced.Add(1)
		default:
			s.metrics.planMisses.Add(1)
		}
	}
	if err != nil {
		return p, err
	}
	ctx := entry.ctx

	// Per-budget rewrite decision, memoized on the entry. The rewrite
	// itself is serialized (see rewriteMu).
	p.out = entry.outcome(p.budget, func() core.Outcome {
		s.rewriteMu.Lock()
		defer s.rewriteMu.Unlock()
		return s.Rewriter.Rewrite(ctx, p.budget)
	})

	p.rq, p.hint = q, engine.Hint{}
	p.optLabel = "original"
	if p.out.Option >= 0 {
		p.rq, p.hint = core.BuildRQ(q, ctx.Options[p.out.Option], ctx.EstRows, ctx.Scale)
		p.optLabel = ctx.Options[p.out.Option].Label(len(q.Preds))
	}

	p.rkey = ResultKey{
		SQL: p.rq.SQL(p.hint), Kind: kind, GridW: gw, GridH: gh,
		Region: s.regionOrExtent(req), Budget: p.budget, DataVersion: version,
	}
	return p, nil
}

// ResultKeyFor resolves a request to the result-cache key the serving path
// would use, without executing or touching the result cache. The key is a
// deterministic function of (dataset, request, budget) — every replica
// computes the same one — which is what lets the cluster routing tier send
// a request to the replica that owns its key (one key space for routing and
// peer ownership). Cold shapes pay the ground-truth context build here,
// exactly as serving them would; warm shapes are two cache lookups.
func (s *Server) ResultKeyFor(req Request) (ResultKey, error) {
	s.DS.DB.RLockData()
	defer s.DS.DB.RUnlockData()
	p, err := s.plan(req, false)
	return p.rkey, err
}

// maxStaleProbes caps how many historical versions a ttl-hinted request may
// probe in the result cache — the "bounded version window" of the staleness
// contract.
const maxStaleProbes = 8

// handle is Handle plus a flag reporting whether the response came from the
// result cache (surfaced as the X-Cache header).
//
// The whole plan+probe+execute sequence runs under the DB's data read lock,
// so it observes exactly one (data, version) pair: an ingest flush either
// happens entirely before this request (which then plans, executes, and
// caches at the new version) or entirely after it. That lock is what turns
// "version-stamped keys" into the stale-read guarantee.
func (s *Server) handle(req Request) (*Response, bool, error) {
	s.DS.DB.RLockData()
	defer s.DS.DB.RUnlockData()
	p, err := s.plan(req, true)
	if err != nil {
		return nil, false, err
	}

	// Result cache: repeated (rewritten SQL, kind, grid, region, budget,
	// version) shapes skip execution and binning entirely. In a cluster, Get
	// may be answered by the key's owning replica's cache (internal/cluster).
	rkey := p.rkey
	if resp := s.results.Get(rkey); resp != nil {
		s.metrics.resultHits.Add(1)
		s.noteOutcome(resp)
		return resp, true, nil
	}
	// Staleness-tolerance hint: probe bounded-recent versions before paying
	// for execution. Strictly a wider lookup — a stale hit is served as-is
	// (its trace and bins are exactly the old version's answer) and nothing
	// is ever stored under an old version's key.
	if req.TTL > 0 {
		versions := s.table.VersionsWithin(req.TTL, s.cfg.Now())
		if len(versions) > maxStaleProbes+1 {
			versions = versions[:maxStaleProbes+1]
		}
		for _, v := range versions[1:] { // [0] is current, already probed
			k := rkey
			k.DataVersion = v
			if resp := s.results.Get(k); resp != nil {
				s.metrics.resultHits.Add(1)
				s.metrics.staleHits.Add(1)
				s.noteOutcome(resp)
				return resp, true, nil
			}
		}
	}
	s.metrics.resultMisses.Add(1)

	res, _, err := s.DS.DB.RunCached(p.rq, p.hint, s.lookups)
	if err != nil {
		return nil, false, err
	}

	resp := &Response{
		Kind:  rkey.Kind,
		GridW: rkey.GridW,
		GridH: rkey.GridH,
		Trace: Trace{
			SQL:          p.sig,
			RewrittenSQL: rkey.SQL,
			Option:       p.optLabel,
			BudgetMs:     p.budget,
			PlanMs:       p.out.PlanMs,
			ExecMs:       p.out.ExecMs,
			TotalMs:      p.out.TotalMs,
			Viable:       p.out.Viable,
			Quality:      p.out.Quality,
			NumExplored:  p.out.Explored,
		},
	}
	switch rkey.Kind {
	case VizScatter:
		resp.Points = res.Points
	default:
		grid := viz.NewGrid(rkey.Region, rkey.GridW, rkey.GridH)
		resp.Bins = grid.Counts(res.Points, res.Weight)
	}
	s.results.Put(rkey, resp)
	s.noteOutcome(resp)
	return resp, false, nil
}

// ResultCache exposes the server's (possibly wrapped) result cache for
// diagnostics — cluster peer endpoints answer fetches from it directly.
func (s *Server) ResultCache() ResultCache { return s.results }

// noteOutcome updates per-response serving metrics.
func (s *Server) noteOutcome(resp *Response) {
	if !resp.Trace.Viable {
		s.metrics.budgetViolations.Add(1)
	}
}

func (s *Server) regionOrExtent(req Request) engine.Rect {
	if req.Region.Area() > 0 {
		return req.Region
	}
	return s.DS.Extent
}
