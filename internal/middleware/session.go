package middleware

import (
	"container/list"
	"math"
	"net/http"
	"sync"

	"github.com/maliva/maliva/internal/engine"
)

// Session-aware serving: requests may carry an opaque session id (the
// X-Maliva-Session header or ?session= query parameter). The gateway — or,
// in a cluster, the routing tier — keeps a small per-session viewport
// history and, after serving each request, predicts where the session pans
// next (linear momentum), what it zooms out to (the lattice parent tile),
// and which neighbors it might drift into. Predictions are dispatched as
// speculative requests through the admission queue's prefetch lane, so a
// hit on the next step is served warm and a miss cost nothing a live
// request would have wanted.

const (
	// SessionHeader carries the client's opaque session id.
	SessionHeader = "X-Maliva-Session"
	// PrefetchHeader marks a speculative request: it takes the prefetch
	// admission lane and returns no body. The routing tier sets it when
	// dispatching predictions to a key's owner replica.
	PrefetchHeader = "X-Maliva-Prefetch"
)

// SessionID extracts a request's session id (header first, query second);
// empty means the request is anonymous and never tracked.
func SessionID(r *http.Request) string {
	if id := r.Header.Get(SessionHeader); id != "" {
		return id
	}
	return r.URL.Query().Get("session")
}

// SessionConfig tunes session tracking and speculative prefetch.
type SessionConfig struct {
	// Disabled turns session tracking (and with it all prefetching) off.
	Disabled bool
	// MaxSessions bounds tracked sessions (LRU-evicted). Default 1024.
	MaxSessions int
	// MaxPrefetch caps predictions issued per observed request, taken in
	// priority order. Default 2 (momentum, then parent): every admitted
	// prediction with a cold plan pays a full |Ω|+1 context build at
	// background priority, so on small machines each extra slot buys little
	// hit rate for a lot of speculative CPU — the compass-neighbor
	// predictions (slot 3+) rarely earn their builds. Raise it on machines
	// with idle cores.
	MaxPrefetch int
	// MaxParentGrid skips the zoom-out (parent-tile) prediction when the
	// doubled grid would exceed this many cells on either axis. Default 256.
	MaxParentGrid int
	// Workers bounds concurrently-executing prefetch dispatches (a token
	// semaphore; overflow is counted as shed). Default 2.
	Workers int
}

// Normalized resolves the config defaults.
func (c SessionConfig) Normalized() SessionConfig {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.MaxPrefetch <= 0 {
		c.MaxPrefetch = 2
	}
	if c.MaxParentGrid <= 0 {
		c.MaxParentGrid = 256
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	return c
}

// sessionState is one tracked session: its latest viewport and the one
// before it (enough for a linear-momentum predictor).
type sessionState struct {
	id      string
	last    Request
	prev    Request
	hasPrev bool
}

// SessionTracker is a bounded LRU of per-session viewport history. It is
// shared by every request goroutine; Observe is a single short critical
// section.
type SessionTracker struct {
	cfg   SessionConfig
	mu    sync.Mutex
	elems map[string]*list.Element // of *sessionState
	lru   *list.List
}

// NewSessionTracker builds a tracker (cfg is normalized internally).
func NewSessionTracker(cfg SessionConfig) *SessionTracker {
	return &SessionTracker{
		cfg:   cfg.Normalized(),
		elems: make(map[string]*list.Element),
		lru:   list.New(),
	}
}

// Len reports the number of tracked sessions (tests).
func (t *SessionTracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.elems)
}

// Observe records req as the session's current viewport and returns the
// prefetch candidates its history predicts, in priority order (momentum
// first). extent is the dataset extent — the tile-lattice anchor for
// snapping and the bound for neighbor pruning.
func (t *SessionTracker) Observe(id string, req Request, extent engine.Rect) []Request {
	if id == "" {
		return nil
	}
	t.mu.Lock()
	var st *sessionState
	if el, ok := t.elems[id]; ok {
		st = el.Value.(*sessionState)
		t.lru.MoveToFront(el)
	} else {
		st = &sessionState{id: id}
		t.elems[id] = t.lru.PushFront(st)
		for t.lru.Len() > t.cfg.MaxSessions {
			old := t.lru.Back()
			t.lru.Remove(old)
			delete(t.elems, old.Value.(*sessionState).id)
		}
	}
	// A repeated identical viewport (refresh, retry) is not a pan: keep the
	// existing prev so momentum survives it.
	if !sameRegion(st.last.Region, req.Region) || st.last.GridW != req.GridW || st.last.GridH != req.GridH {
		st.prev, st.hasPrev = st.last, st.last.Region.Area() > 0
	}
	st.last = req
	prev, hasPrev := st.prev, st.hasPrev
	t.mu.Unlock()

	return predictNext(prev, hasPrev, req, extent, t.cfg.MaxPrefetch, t.cfg.MaxParentGrid)
}

// regionEps is the relative tolerance for treating two viewport regions as
// the same (float noise from lattice arithmetic is ~1e-12 of a tile).
const regionEps = 1e-9

func approxEq(a, b, scale float64) bool {
	tol := regionEps * math.Max(1, math.Abs(scale))
	return math.Abs(a-b) <= tol
}

func sameRegion(a, b engine.Rect) bool {
	sw := math.Max(a.MaxLon-a.MinLon, a.MaxLat-a.MinLat)
	return approxEq(a.MinLon, b.MinLon, sw) && approxEq(a.MinLat, b.MinLat, sw) &&
		approxEq(a.MaxLon, b.MaxLon, sw) && approxEq(a.MaxLat, b.MaxLat, sw)
}

// snapAxis snaps one axis of a predicted region onto the extent-anchored
// power-of-two tile lattice, reproducing the exact float arithmetic
// (eMin + k·(extentSpan/2^z)) a slippy-tile client computes. Regions whose
// span is not ~a power-of-two fraction of the extent pass through
// unchanged — prediction still works, exact-key hits just depend on the
// client's own arithmetic.
func snapAxis(min, max, eMin, eMax float64) (float64, float64) {
	span, eSpan := max-min, eMax-eMin
	if span <= 0 || eSpan <= 0 {
		return min, max
	}
	zf := math.Log2(eSpan / span)
	z := math.Round(zf)
	if math.Abs(zf-z) > 1e-6 || z < 0 || z > 24 {
		return min, max
	}
	tile := eSpan / float64(int(1)<<int(z))
	k := math.Round((min - eMin) / tile)
	return eMin + k*tile, eMin + (k+1)*tile
}

// snapRegion snaps both axes onto the tile lattice.
func snapRegion(r engine.Rect, extent engine.Rect) engine.Rect {
	r.MinLon, r.MaxLon = snapAxis(r.MinLon, r.MaxLon, extent.MinLon, extent.MaxLon)
	r.MinLat, r.MaxLat = snapAxis(r.MinLat, r.MaxLat, extent.MinLat, extent.MaxLat)
	return r
}

// predictNext derives the prefetch candidates for a session whose current
// viewport is cur (and previous viewport prev, when hasPrev):
//
//  1. momentum — the viewport shifted by the last pan delta (same zoom
//     only), snapped to the tile lattice;
//  2. parent — the containing lattice tile at half the zoom with a doubled
//     grid, so its cells align exactly with cur's and a later zoom-out (or
//     any sub-tile request) is answered by subsumption slicing;
//  3. neighbors — one viewport step in each compass direction.
//
// Candidates are deduped against each other and against cur, then capped
// at maxN.
func predictNext(prev Request, hasPrev bool, cur Request, extent engine.Rect, maxN, maxGrid int) []Request {
	w := cur.Region.MaxLon - cur.Region.MinLon
	h := cur.Region.MaxLat - cur.Region.MinLat
	if w <= 0 || h <= 0 || maxN <= 0 {
		return nil
	}

	var out []Request
	seen := []engine.Rect{cur.Region}
	add := func(r engine.Rect, grid bool, gw, gh int) {
		if len(out) >= maxN || !r.Intersects(extent) {
			return
		}
		for _, s := range seen {
			if sameRegion(s, r) {
				return
			}
		}
		seen = append(seen, r)
		c := cur
		c.Region = r
		c.TTL = 0
		if grid {
			c.GridW, c.GridH = gw, gh
		}
		out = append(out, c)
	}

	// 1. Linear momentum: same zoom (equal viewport size and grid), nonzero
	// pan delta → the next viewport continues the pan.
	if hasPrev && prev.GridW == cur.GridW && prev.GridH == cur.GridH {
		pw := prev.Region.MaxLon - prev.Region.MinLon
		ph := prev.Region.MaxLat - prev.Region.MinLat
		if approxEq(pw, w, w) && approxEq(ph, h, h) && !sameRegion(prev.Region, cur.Region) {
			dLon := cur.Region.MinLon - prev.Region.MinLon
			dLat := cur.Region.MinLat - prev.Region.MinLat
			next := engine.Rect{
				MinLon: cur.Region.MinLon + dLon, MinLat: cur.Region.MinLat + dLat,
				MaxLon: cur.Region.MaxLon + dLon, MaxLat: cur.Region.MaxLat + dLat,
			}
			add(snapRegion(next, extent), false, 0, 0)
		}
	}

	// 2. Lattice parent: the 2×-sized tile containing cur, grid doubled so
	// cells stay the same geographic size (exact subsumption alignment).
	gw, gh := cur.GridW, cur.GridH
	if gw <= 0 {
		gw = 64
	}
	if gh <= 0 {
		gh = 64
	}
	if 2*gw <= maxGrid && 2*gh <= maxGrid {
		pk := math.Floor((cur.Region.MinLon-extent.MinLon)/(2*w) + alignEps)
		qk := math.Floor((cur.Region.MinLat-extent.MinLat)/(2*h) + alignEps)
		parent := engine.Rect{
			MinLon: extent.MinLon + pk*(2*w), MinLat: extent.MinLat + qk*(2*h),
		}
		parent.MaxLon = parent.MinLon + 2*w
		parent.MaxLat = parent.MinLat + 2*h
		add(snapRegion(parent, extent), true, 2*gw, 2*gh)
	}

	// 3. Neighbors: one viewport step per direction.
	for _, d := range [][2]float64{{w, 0}, {-w, 0}, {0, h}, {0, -h}} {
		n := engine.Rect{
			MinLon: cur.Region.MinLon + d[0], MinLat: cur.Region.MinLat + d[1],
			MaxLon: cur.Region.MaxLon + d[0], MaxLat: cur.Region.MaxLat + d[1],
		}
		add(snapRegion(n, extent), false, 0, 0)
	}
	return out
}
