package harness

import (
	"sync"

	"github.com/maliva/maliva/internal/core"
)

// fig12Memo caches the Fig. 12/13 evaluation runs (the two figures share
// one experiment: VQP and AQRT views of the same comparison).
var (
	fig12Mu   sync.Mutex
	fig12Memo = map[string][]EvalResult{}
)

// fig12Datasets defines the three dataset runs of Figures 12/13.
var fig12Datasets = []struct {
	dataset string
	budget  float64
	label   string
}{
	{"twitter", 500, "Twitter (τ=500ms)"},
	{"taxi", 1000, "NYC Taxi (τ=1s)"},
	{"tpch", 500, "TPC-H (τ=500ms)"},
}

// fig12Eval runs (or reuses) the standard four-way comparison on a dataset.
func fig12Eval(cfg RunConfig, dataset string, budget float64) ([]EvalResult, error) {
	key := dataset
	if cfg.Small {
		key += "-small"
	}
	fig12Mu.Lock()
	defer fig12Mu.Unlock()
	if res, ok := fig12Memo[key]; ok {
		return res, nil
	}
	lab, err := labFor(cfg, labKey{
		dataset: dataset, numPreds: 3, space: "hint",
		small: cfg.Small, numQueries: defaultQueries(cfg),
	}, budget)
	if err != nil {
		return nil, err
	}
	comp, err := buildComparators(cfg, lab)
	if err != nil {
		return nil, err
	}
	buckets := Bucketize(lab.Eval, budget, StandardBuckets())
	res := evalAll([]core.Rewriter{comp.MDPAcc, comp.MDPAppr, comp.Bao, comp.Baseline}, buckets, budget)
	fig12Memo[key] = res
	return res, nil
}

// RunFig12 reproduces Figure 12: viable query percentage versus number of
// viable plans on all three datasets, for MDP (Accurate-QTE),
// MDP (Approximate-QTE), Bao and the baseline.
func RunFig12(cfg RunConfig) (*Report, error) {
	r := &Report{ID: "fig12", Title: "Viable query percentage (paper Figure 12)"}
	for _, d := range fig12Datasets {
		res, err := fig12Eval(cfg, d.dataset, d.budget)
		if err != nil {
			return nil, err
		}
		r.Sections = append(r.Sections, ComparisonSection(d.label, "vqp", res))
	}
	r.AddNote("expected shape: MDP(Accurate) ≥ MDP(Approximate) > Bao ≫ Baseline on Twitter/Taxi; Bao competitive on TPC-H")
	return r, nil
}

// RunFig13 reproduces Figure 13: average query response time versus number
// of viable plans, including the planning/execution split for MDP and Bao.
func RunFig13(cfg RunConfig) (*Report, error) {
	r := &Report{ID: "fig13", Title: "Average query response time (paper Figure 13)"}
	for _, d := range fig12Datasets {
		res, err := fig12Eval(cfg, d.dataset, d.budget)
		if err != nil {
			return nil, err
		}
		r.Sections = append(r.Sections, ComparisonSection(d.label+" — total", "aqrt", res))
		r.Sections = append(r.Sections, ComparisonSection(d.label+" — plan/query split", "aqrt-split", res))
	}
	r.AddNote("paper example: Twitter 1-viable — baseline 1.11s, Bao 1.01s, MDP(Appr) 0.40s")
	return r, nil
}
