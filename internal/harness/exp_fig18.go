package harness

import (
	"github.com/maliva/maliva/internal/core"
)

// RunFig18 reproduces Figure 18: performance on join queries. The rewrite
// options are 7 index combinations × 3 join methods = 21 hint sets (§7.5),
// with τ = 500 ms on the Twitter dataset.
func RunFig18(cfg RunConfig) (*Report, error) {
	const budget = 500.0
	lab, err := labFor(cfg, labKey{
		dataset: "twitter", numPreds: 3, join: true, space: "join",
		small: cfg.Small, numQueries: defaultQueries(cfg) * 2 / 3,
	}, budget)
	if err != nil {
		return nil, err
	}
	comp, err := buildComparators(cfg, lab)
	if err != nil {
		return nil, err
	}
	groups := [][2]int{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}}
	buckets := Bucketize(lab.Eval, budget, groups)
	res := evalAll([]core.Rewriter{comp.MDPAcc, comp.MDPAppr, comp.Bao, comp.Baseline}, buckets, budget)

	r := &Report{ID: "fig18", Title: "Join queries: 21 rewrite options (paper Figure 18)"}
	r.Sections = append(r.Sections, ComparisonSection("VQP", "vqp", res))
	r.Sections = append(r.Sections, ComparisonSection("AQRT — total", "aqrt", res))
	r.Sections = append(r.Sections, ComparisonSection("AQRT — plan/query split", "aqrt-split", res))
	r.AddNote("paper: MDP(Appr) > 2× Bao's viable plans at 1-2 viable; AQRT 0.34s vs Bao's 0.87s")
	return r, nil
}
