package harness

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/maliva/maliva/internal/bao"
	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/qte"
	"github.com/maliva/maliva/internal/workload"
)

// RunConfig controls experiment execution.
type RunConfig struct {
	// Small reduces dataset/workload/training sizes so the whole suite runs
	// in benchmark time; the full configuration matches the paper's scale.
	Small bool
	// Out receives progress lines (nil = silent).
	Out io.Writer
}

func (c RunConfig) logf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format+"\n", args...)
	}
}

// Experiment reproduces one of the paper's tables or figures.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg RunConfig) (*Report, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"t1", "Table 1: datasets", RunTable1},
		{"t2", "Table 2: evaluation workloads by number of viable plans", RunTable2},
		{"t3", "Table 3: workloads with 16 and 32 rewrite options", RunTable3},
		{"s1", "§1 statistic: optimizer failures on queries with viable plans", RunStatOptimizer},
		{"fig12", "Figure 12: viable query percentage (3 datasets)", RunFig12},
		{"fig13", "Figure 13: average query response time (3 datasets)", RunFig13},
		{"fig14", "Figure 14: VQP for 16 and 32 rewrite options", RunFig14},
		{"fig15", "Figure 15: AQRT for 16 and 32 rewrite options", RunFig15},
		{"fig16", "Figure 16: VQP for different time budgets", RunFig16},
		{"fig17", "Figure 17: AQRT for different time budgets", RunFig17},
		{"fig18", "Figure 18: performance on join queries", RunFig18},
		{"fig19", "Figure 19: unseen queries and a commercial database", RunFig19},
		{"fig20", "Figure 20: quality-aware rewriting", RunFig20},
		{"fig21", "Figure 21: learning curves and training time", RunFig21},
		{"abl", "Ablations: policy value, cost sharing, hint compliance", RunAblation},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---------------------------------------------------------------------------
// Shared lab construction with memoization (figures reuse workloads).

type labKey struct {
	dataset    string // "twitter", "taxi", "tpch", "twitter-commercial"
	numPreds   int
	join       bool
	space      string // "hint", "join", "quality"
	small      bool
	numQueries int
}

var (
	labMu   sync.Mutex
	labMemo = map[labKey]*Lab{}
)

// labFor builds (or reuses) the lab for a key.
func labFor(cfg RunConfig, key labKey, budget float64) (*Lab, error) {
	labMu.Lock()
	defer labMu.Unlock()
	if lab, ok := labMemo[key]; ok {
		cp := *lab
		cp.Budget = budget
		return &cp, nil
	}
	ds, err := buildDataset(key)
	if err != nil {
		return nil, err
	}
	space := spaceFor(key.space)
	nq := key.numQueries
	cfg.logf("building %s lab: %d queries, %d preds, space=%s", key.dataset, nq, key.numPreds, key.space)
	lab, err := BuildLab(ds, LabConfig{
		NumQueries: nq,
		QuerySpec:  workload.QuerySpec{NumPreds: key.numPreds, Join: key.join, Seed: 5},
		Space:      space,
		Budget:     budget,
		Seed:       9,
		Progress:   cfg.Out,
	})
	if err != nil {
		return nil, err
	}
	labMemo[key] = lab
	cp := *lab
	cp.Budget = budget
	return &cp, nil
}

// ResetLabCache clears memoized labs (tests use it to bound memory).
func ResetLabCache() {
	labMu.Lock()
	defer labMu.Unlock()
	labMemo = map[labKey]*Lab{}
}

func spaceFor(name string) core.SpaceSpec {
	switch name {
	case "join":
		return core.JoinSpec()
	case "quality":
		return core.QualityAwareSpec()
	default:
		return core.HintOnlySpec()
	}
}

func buildDataset(key labKey) (*workload.Dataset, error) {
	switch key.dataset {
	case "twitter":
		c := workload.TwitterConfig()
		if key.small {
			c.Rows = 60_000
			c.Scale = 100e6 / float64(c.Rows)
		}
		return workload.Twitter(c)
	case "twitter-commercial":
		// §7.6: a smaller 10M-record table on the commercial profile.
		c := workload.TwitterConfig()
		c.Rows = 60_000
		c.Scale = 10e6 / float64(c.Rows)
		ds, err := workload.Twitter(c)
		if err != nil {
			return nil, err
		}
		ds.DB.Profile = engine.ProfileCommercial()
		return ds, nil
	case "taxi":
		c := workload.TaxiConfig()
		if key.small {
			c.Rows = 60_000
			c.Scale = 500e6 / float64(c.Rows)
		}
		return workload.Taxi(c)
	case "tpch":
		c := workload.TPCHConfig()
		if key.small {
			c.Rows = 60_000
			c.Scale = 300e6 / float64(c.Rows)
		}
		return workload.TPCH(c)
	}
	return nil, fmt.Errorf("harness: unknown dataset %q", key.dataset)
}

// defaultQueries returns the workload size for a configuration.
func defaultQueries(cfg RunConfig) int {
	if cfg.Small {
		return 360
	}
	return 1100
}

func agentSeeds(cfg RunConfig) []int64 {
	if cfg.Small {
		return []int64{7}
	}
	return []int64{7, 17, 27}
}

// stdAgentConfig returns the agent hyperparameters for experiments.
func stdAgentConfig(cfg RunConfig) core.AgentConfig {
	a := core.DefaultAgentConfig()
	if cfg.Small {
		a.MaxEpochs = 14
	}
	return a
}

// comparatorSet holds the trained rewriters shared by Figures 12–18.
type comparatorSet struct {
	Baseline core.Rewriter
	MDPAcc   core.Rewriter
	MDPAppr  core.Rewriter
	Bao      core.Rewriter
	Naive    core.Rewriter
	SampQTE  *qte.SamplingQTE
	BaoImpl  *bao.Rewriter
}

// buildComparators trains everything the standard comparison needs.
func buildComparators(cfg RunConfig, lab *Lab) (*comparatorSet, error) {
	acc := qte.NewAccurateQTE()
	samp, err := lab.NewSamplingQTE()
	if err != nil {
		return nil, err
	}
	cfg.logf("training MDP (Accurate-QTE) agent")
	accAgent, accVal := lab.TrainAgent(TrainAgentConfig{
		Agent: stdAgentConfig(cfg), QTE: acc, Seeds: agentSeeds(cfg),
	})
	cfg.logf("  validation score %.3f", accVal)
	cfg.logf("training MDP (Approximate-QTE) agent")
	sampAgent, sampVal := lab.TrainAgent(TrainAgentConfig{
		Agent: stdAgentConfig(cfg), QTE: samp, Seeds: agentSeeds(cfg),
	})
	cfg.logf("  validation score %.3f", sampVal)
	cfg.logf("training Bao")
	b := bao.New(bao.DefaultConfig())
	b.Train(lab.Train)
	return &comparatorSet{
		Baseline: core.BaselineRewriter{},
		MDPAcc:   &core.MDPRewriter{Agent: accAgent, QTE: acc, Tag: "Accurate-QTE"},
		MDPAppr:  &core.MDPRewriter{Agent: sampAgent, QTE: samp, Tag: "Approximate-QTE"},
		Bao:      b,
		Naive:    core.NaiveRewriter{QTE: samp, ExactOnly: true},
		SampQTE:  samp,
		BaoImpl:  b,
	}, nil
}

// evalAll evaluates a list of rewriters over buckets.
func evalAll(rewriters []core.Rewriter, buckets []*Bucket, budget float64) []EvalResult {
	out := make([]EvalResult, 0, len(rewriters))
	for _, rw := range rewriters {
		out = append(out, Evaluate(rw, buckets, budget))
	}
	return out
}

// histogramRows renders a viable-plan histogram as grouped table rows.
func histogramRows(hist map[int]int, groups [][2]int) [][]string {
	rows := make([][]string, 0, len(groups))
	for _, g := range groups {
		label := fmt.Sprint(g[0])
		if g[1] < 0 {
			label = fmt.Sprintf("≥%d", g[0])
		} else if g[1] != g[0] {
			label = fmt.Sprintf("%d-%d", g[0], g[1])
		}
		n := 0
		for k, v := range hist {
			if k >= g[0] && (g[1] < 0 || k <= g[1]) {
				n += v
			}
		}
		rows = append(rows, []string{label, fmt.Sprint(n)})
	}
	return rows
}

// sortedHistKeys is a convenience wrapper for deterministic iteration.
func sortedHistKeys(hist map[int]int) []int {
	keys := make([]int, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
