package harness

import (
	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/qte"
)

// RunFig19 reproduces Figure 19: (a) generalization to unseen query shapes —
// agents trained on single-table selection queries, evaluated on join-shaped
// queries with the same 8 index-hint options; (b) a commercial database with
// a much less predictable execution profile (smaller table, τ = 250 ms).
func RunFig19(cfg RunConfig) (*Report, error) {
	r := &Report{ID: "fig19", Title: "Unseen queries and commercial DB (paper Figure 19)"}
	if err := fig19Unseen(cfg, r); err != nil {
		return nil, err
	}
	if err := fig19Commercial(cfg, r); err != nil {
		return nil, err
	}
	return r, nil
}

// fig19Unseen trains on the single-table workload and evaluates on
// join-shaped queries over the *same* option space (index subsets only).
func fig19Unseen(cfg RunConfig, r *Report) error {
	const budget = 500.0
	trainLab, err := labFor(cfg, labKey{
		dataset: "twitter", numPreds: 3, space: "hint",
		small: cfg.Small, numQueries: defaultQueries(cfg),
	}, budget)
	if err != nil {
		return err
	}
	// Unseen shape: join queries, but still the 2^3 index-hint option space.
	evalLab, err := labFor(cfg, labKey{
		dataset: "twitter", numPreds: 3, join: true, space: "hint",
		small: cfg.Small, numQueries: defaultQueries(cfg) / 2,
	}, budget)
	if err != nil {
		return err
	}
	acc := qte.NewAccurateQTE()
	samp, err := trainLab.NewSamplingQTE()
	if err != nil {
		return err
	}
	cfg.logf("fig19a: training agents on single-table workload")
	accAgent, _ := trainLab.TrainAgent(TrainAgentConfig{Agent: stdAgentConfig(cfg), QTE: acc, Seeds: agentSeeds(cfg)})
	sampAgent, _ := trainLab.TrainAgent(TrainAgentConfig{Agent: stdAgentConfig(cfg), QTE: samp, Seeds: agentSeeds(cfg)})

	buckets := Bucketize(evalLab.Eval, budget, StandardBuckets())
	res := evalAll([]core.Rewriter{
		&core.MDPRewriter{Agent: accAgent, QTE: acc, Tag: "Accurate-QTE"},
		&core.MDPRewriter{Agent: sampAgent, QTE: samp, Tag: "Approximate-QTE"},
		core.BaselineRewriter{},
	}, buckets, budget)
	r.Sections = append(r.Sections, ComparisonSection("(a) unseen join-shaped queries, trained on selections (τ=500ms)", "vqp", res))
	r.AddNote("paper (a): 1 viable plan — baseline 2%%, MDP(Appr) 55%%, MDP(Acc) 74%%")
	return nil
}

// fig19Commercial evaluates on the commercial-profile engine: a 10M-row
// table, τ = 250 ms, and an approximate QTE whose accuracy collapses
// because execution times depend on buffering and dynamic plan switching
// the selectivity-only model cannot see.
func fig19Commercial(cfg RunConfig, r *Report) error {
	const budget = 250.0
	lab, err := labFor(cfg, labKey{
		dataset: "twitter-commercial", numPreds: 3, space: "hint",
		small: cfg.Small, numQueries: defaultQueries(cfg) * 2 / 3,
	}, budget)
	if err != nil {
		return err
	}
	acc := qte.NewAccurateQTE()
	samp, err := lab.NewSamplingQTE()
	if err != nil {
		return err
	}
	relErr := samp.MeanRelError(lab.Val)
	cfg.logf("fig19b: commercial-profile approximate QTE mean relative error %.2f", relErr)
	accAgent, _ := lab.TrainAgent(TrainAgentConfig{Agent: stdAgentConfig(cfg), QTE: acc, Seeds: agentSeeds(cfg)})
	sampAgent, _ := lab.TrainAgent(TrainAgentConfig{Agent: stdAgentConfig(cfg), QTE: samp, Seeds: agentSeeds(cfg)})

	groups := [][2]int{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	buckets := Bucketize(lab.Eval, budget, groups)
	res := evalAll([]core.Rewriter{
		&core.MDPRewriter{Agent: accAgent, QTE: acc, Tag: "Accurate-QTE"},
		&core.MDPRewriter{Agent: sampAgent, QTE: samp, Tag: "Approximate-QTE"},
		core.BaselineRewriter{},
	}, buckets, budget)
	r.Sections = append(r.Sections, ComparisonSection("(b) commercial DB profile (τ=250ms)", "vqp", res))
	r.AddNote("fig19b approximate-QTE mean relative error: %.2f (postgres profile is typically ~0.3)", relErr)
	r.AddNote("paper (b): 1-2 viable — baseline 23%%, MDP(Appr) 36%%, MDP(Acc) 50%%")
	return nil
}
