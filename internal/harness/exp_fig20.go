package harness

import (
	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/qte"
)

// RunFig20 reproduces Figure 20: quality-aware rewriting on Twitter with the
// accurate QTE. The option space is the 8 index-hint sets plus five LIMIT
// approximation rules (0.032%–20% of the estimated cardinality). Compared:
// the baseline, the hint-only MDP, and the one-stage and two-stage
// quality-aware MDP rewriters (§6), with β = 0.7.
func RunFig20(cfg RunConfig) (*Report, error) {
	const budget = 500.0
	const beta = 0.7
	lab, err := labFor(cfg, labKey{
		dataset: "twitter", numPreds: 3, space: "quality",
		small: cfg.Small, numQueries: defaultQueries(cfg),
	}, budget)
	if err != nil {
		return nil, err
	}
	acc := qte.NewAccurateQTE()

	// Hint-only agent over the exact sub-space (also stage 1 of two-stage).
	exactTrain := subContexts(lab.Train, core.ExactOptionIndexes)
	exactVal := subContexts(lab.Val, core.ExactOptionIndexes)
	cfg.logf("fig20: training hint-only agent")
	hintAgent, _ := lab.TrainAgent(TrainAgentConfig{
		Agent: stdAgentConfig(cfg), QTE: acc, Seeds: agentSeeds(cfg),
		Contexts: exactTrain, ValContexts: exactVal,
	})

	// One-stage agent over the full space with the quality-aware reward.
	cfg.logf("fig20: training one-stage quality-aware agent")
	oneAgent, _ := lab.TrainAgent(TrainAgentConfig{
		Agent: stdAgentConfig(cfg), QTE: acc, Beta: beta, Seeds: agentSeeds(cfg),
	})

	// Stage-2 agent over the approximation sub-space.
	approxTrain := subContexts(lab.Train, core.ApproxOptionIndexes)
	approxVal := subContexts(lab.Val, core.ApproxOptionIndexes)
	cfg.logf("fig20: training stage-2 (approximation) agent")
	stage2Agent, _ := lab.TrainAgent(TrainAgentConfig{
		Agent: stdAgentConfig(cfg), QTE: acc, Beta: beta, Seeds: agentSeeds(cfg),
		Contexts: approxTrain, ValContexts: approxVal,
	})

	rewriters := []core.Rewriter{
		&core.OneStageRewriter{Agent: oneAgent, QTE: acc, Beta: beta},
		&core.TwoStageRewriter{StageOne: hintAgent, StageTwo: stage2Agent, QTE: acc, Beta: beta},
		&hintOnlyAdapter{agent: hintAgent, qte: acc},
		core.BaselineRewriter{},
	}
	groups := [][2]int{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}}
	buckets := Bucketize(lab.Eval, budget, groups)
	res := evalAll(rewriters, buckets, budget)

	r := &Report{ID: "fig20", Title: "Quality-aware rewriting (paper Figure 20)"}
	r.Sections = append(r.Sections, ComparisonSection("(a) VQP", "vqp", res))
	r.Sections = append(r.Sections, ComparisonSection("(b) AQRT", "aqrt", res))
	r.Sections = append(r.Sections, ComparisonSection("(c) average Jaccard quality", "quality", res))
	r.AddNote("paper: 0-viable VQP — two-stage 24%%, one-stage 31%%; quality — two-stage 0.79, one-stage 0.43")
	return r, nil
}

// subContexts maps a context list through an option-index selector.
func subContexts(ctxs []*core.QueryContext, sel func(*core.QueryContext) []int) []*core.QueryContext {
	out := make([]*core.QueryContext, 0, len(ctxs))
	for _, ctx := range ctxs {
		idx := sel(ctx)
		if len(idx) == 0 {
			continue
		}
		out = append(out, core.SubContext(ctx, idx))
	}
	return out
}

// hintOnlyAdapter evaluates the hint-only agent inside the quality-aware
// space (the paper's "MDP (Accu.-QTE)" line in Fig. 20): it only ever
// explores the exact options.
type hintOnlyAdapter struct {
	agent *core.Agent
	qte   core.Estimator
}

func (h *hintOnlyAdapter) Name() string { return "MDP (Accu.-QTE)" }

func (h *hintOnlyAdapter) Rewrite(ctx *core.QueryContext, budget float64) core.Outcome {
	exact := core.ExactOptionIndexes(ctx)
	sub := core.SubContext(ctx, exact)
	env := core.NewEnv(core.EnvConfig{Budget: budget, QTE: h.qte, Beta: 1}, sub)
	out := h.agent.Rewrite(env)
	out.Option = exact[out.Option]
	return out
}
