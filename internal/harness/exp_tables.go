package harness

import (
	"fmt"
	"strings"
)

// RunTable1 reproduces Table 1: the three datasets, their (simulated) record
// counts, and the filtering/output attributes.
func RunTable1(cfg RunConfig) (*Report, error) {
	r := &Report{ID: "t1", Title: "Datasets (paper Table 1)"}
	rows := [][]string{}
	for _, name := range []string{"twitter", "taxi", "tpch"} {
		key := labKey{dataset: name, small: cfg.Small}
		ds, err := buildDataset(key)
		if err != nil {
			return nil, err
		}
		main := ds.DB.Table(ds.Main)
		rows = append(rows, []string{
			ds.Name,
			fmt.Sprintf("%.0fM", main.RealRows()/1e6),
			fmt.Sprint(main.Rows),
			fmt.Sprintf("%.0f×", main.ScaleFactor),
			strings.Join(ds.FilterCols, ", "),
			strings.Join(ds.OutputCols, ", "),
		})
	}
	r.AddSection("", []string{"Dataset", "Simulated records", "Stored rows", "Scale", "Filtering attributes", "Output attributes"}, rows)
	r.AddNote("paper: Twitter 100M / NYC Taxi 500M / TPC-H 300M records")
	return r, nil
}

// RunTable2 reproduces Table 2: evaluation-workload sizes by number of
// viable plans for the three datasets (8 rewrite options, τ = 500 ms /
// 1 s / 500 ms).
func RunTable2(cfg RunConfig) (*Report, error) {
	r := &Report{ID: "t2", Title: "Evaluation workloads by # viable plans (paper Table 2)"}
	groups := [][2]int{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, -1}}
	cols := []string{"# viable plans", "0", "1", "2", "3", "4", "≥5"}
	var rows [][]string
	for _, tc := range []struct {
		dataset string
		budget  float64
	}{{"twitter", 500}, {"taxi", 1000}, {"tpch", 500}} {
		lab, err := labFor(cfg, labKey{
			dataset: tc.dataset, numPreds: 3, space: "hint",
			small: cfg.Small, numQueries: defaultQueries(cfg),
		}, tc.budget)
		if err != nil {
			return nil, err
		}
		hist := ViablePlanHistogram(lab.Eval, tc.budget)
		row := []string{lab.DS.Name}
		for _, g := range groups {
			n := 0
			for k, v := range hist {
				if k >= g[0] && (g[1] < 0 || k <= g[1]) {
					n += v
				}
			}
			row = append(row, fmt.Sprint(n))
		}
		rows = append(rows, row)
	}
	r.AddSection("", cols, rows)
	r.AddNote("paper Table 2: Twitter 518/97/234/118/153/69; Taxi 408/91/146/13/181/3; TPC-H 381/107/310/66/47/0")
	return r, nil
}

// RunTable3 reproduces Table 3: Twitter workloads with 16 and 32 rewrite
// options (4 and 5 filtering attributes).
func RunTable3(cfg RunConfig) (*Report, error) {
	r := &Report{ID: "t3", Title: "Workloads with 16 and 32 rewrite options (paper Table 3)"}
	for _, tc := range []struct {
		numPreds int
		groups   [][2]int
		title    string
	}{
		{4, [][2]int{{0, 0}, {1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, -1}}, "16 rewrite options"},
		{5, [][2]int{{0, 0}, {1, 4}, {5, 8}, {9, 12}, {13, 16}, {17, -1}}, "32 rewrite options"},
	} {
		lab, err := labFor(cfg, labKey{
			dataset: "twitter", numPreds: tc.numPreds, space: "hint",
			small: cfg.Small, numQueries: defaultQueries(cfg),
		}, 500)
		if err != nil {
			return nil, err
		}
		hist := ViablePlanHistogram(lab.Eval, 500)
		r.AddSection(tc.title, []string{"# viable plans", "# queries"}, histogramRows(hist, tc.groups))
	}
	r.AddNote("paper Table 3: 16 RO → 485/150/241/90/132/93; 32 RO → 412/141/197/159/151/145")
	return r, nil
}

// RunStatOptimizer reproduces the §1 statistic: of the evaluation queries
// with at least one viable plan, how many did the backend optimizer plan
// non-viably (paper: 269 of 602 on PostgreSQL).
func RunStatOptimizer(cfg RunConfig) (*Report, error) {
	lab, err := labFor(cfg, labKey{
		dataset: "twitter", numPreds: 3, space: "hint",
		small: cfg.Small, numQueries: defaultQueries(cfg),
	}, 500)
	if err != nil {
		return nil, err
	}
	have, fail := 0, 0
	for _, ctx := range lab.Eval {
		if ctx.NumViable(500) >= 1 {
			have++
			if ctx.BaselineMs > 500 {
				fail++
			}
		}
	}
	r := &Report{ID: "s1", Title: "Optimizer failures on queries with ≥1 viable plan (§1)"}
	r.AddSection("", []string{"queries w/ viable plan", "optimizer non-viable", "failure %"},
		[][]string{{fmt.Sprint(have), fmt.Sprint(fail), FormatPct(100 * float64(fail) / float64(max(1, have)))}})
	r.AddNote("paper: 269 of 602 (45%%) on PostgreSQL with τ = 500 ms")
	return r, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
