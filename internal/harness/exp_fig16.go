package harness

import (
	"fmt"
	"sync"

	"github.com/maliva/maliva/internal/core"
)

// fig16Memo caches per-budget runs shared by Figures 16/17.
var (
	fig16Mu   sync.Mutex
	fig16Memo = map[string][]EvalResult{}
)

// fig16Budgets are the §7.4 time budgets in milliseconds.
var fig16Budgets = []float64{250, 750, 1000}

// fig16Eval runs (or reuses) the comparison for one budget. Contexts are
// shared across budgets (ground truth is budget-independent); agents are
// retrained per budget since the policy depends on τ.
func fig16Eval(cfg RunConfig, budget float64) ([]EvalResult, error) {
	key := fmt.Sprintf("%v-%v", budget, cfg.Small)
	fig16Mu.Lock()
	defer fig16Mu.Unlock()
	if res, ok := fig16Memo[key]; ok {
		return res, nil
	}
	lab, err := labFor(cfg, labKey{
		dataset: "twitter", numPreds: 3, space: "hint",
		small: cfg.Small, numQueries: defaultQueries(cfg),
	}, budget)
	if err != nil {
		return nil, err
	}
	comp, err := buildComparators(cfg, lab)
	if err != nil {
		return nil, err
	}
	buckets := Bucketize(lab.Eval, budget, StandardBuckets())
	res := evalAll([]core.Rewriter{comp.MDPAcc, comp.MDPAppr, comp.Bao, comp.Baseline}, buckets, budget)
	fig16Memo[key] = res
	return res, nil
}

// RunFig16 reproduces Figure 16: VQP on Twitter for τ ∈ {0.25, 0.75, 1.0}s.
func RunFig16(cfg RunConfig) (*Report, error) {
	r := &Report{ID: "fig16", Title: "VQP for different time budgets (paper Figure 16)"}
	for _, b := range fig16Budgets {
		res, err := fig16Eval(cfg, b)
		if err != nil {
			return nil, err
		}
		r.Sections = append(r.Sections, ComparisonSection(fmt.Sprintf("τ = %.2gs", b/1000), "vqp", res))
	}
	r.AddNote("expected crossover: MDP(Approximate) wins at τ=0.25s (accurate QTE too expensive); MDP(Accurate) wins at τ=1s")
	return r, nil
}

// RunFig17 reproduces Figure 17: AQRT for the same budgets.
func RunFig17(cfg RunConfig) (*Report, error) {
	r := &Report{ID: "fig17", Title: "AQRT for different time budgets (paper Figure 17)"}
	for _, b := range fig16Budgets {
		res, err := fig16Eval(cfg, b)
		if err != nil {
			return nil, err
		}
		r.Sections = append(r.Sections, ComparisonSection(fmt.Sprintf("τ = %.2gs — total", b/1000), "aqrt", res))
	}
	return r, nil
}
