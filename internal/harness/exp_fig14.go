package harness

import (
	"sync"

	"github.com/maliva/maliva/internal/core"
)

// fig14Memo caches the 16/32-rewrite-option runs shared by Figures 14/15.
var (
	fig14Mu   sync.Mutex
	fig14Memo = map[string][]EvalResult{}
)

// fig14Cases defines the two option-count workloads of §7.3.
var fig14Cases = []struct {
	numPreds int
	options  int
	buckets  [][2]int
	label    string
}{
	{4, 16, [][2]int{{1, 2}, {3, 4}, {5, 6}, {7, 8}}, "16 rewrite options"},
	{5, 32, [][2]int{{1, 4}, {5, 8}, {9, 12}, {13, 16}}, "32 rewrite options"},
}

// fig14Eval runs (or reuses) the comparison for one option count. The naive
// brute-force comparator is included only for 16 options, as in the paper's
// Fig. 14(a)/15(a).
func fig14Eval(cfg RunConfig, caseIdx int) ([]EvalResult, error) {
	c := fig14Cases[caseIdx]
	key := c.label
	if cfg.Small {
		key += "-small"
	}
	fig14Mu.Lock()
	defer fig14Mu.Unlock()
	if res, ok := fig14Memo[key]; ok {
		return res, nil
	}
	const budget = 500.0
	lab, err := labFor(cfg, labKey{
		dataset: "twitter", numPreds: c.numPreds, space: "hint",
		small: cfg.Small, numQueries: defaultQueries(cfg),
	}, budget)
	if err != nil {
		return nil, err
	}
	comp, err := buildComparators(cfg, lab)
	if err != nil {
		return nil, err
	}
	buckets := Bucketize(lab.Eval, budget, c.buckets)
	rewriters := []core.Rewriter{comp.MDPAcc, comp.MDPAppr}
	if c.options == 16 {
		rewriters = append(rewriters, comp.Naive)
	}
	rewriters = append(rewriters, comp.Bao, comp.Baseline)
	res := evalAll(rewriters, buckets, budget)
	fig14Memo[key] = res
	return res, nil
}

// RunFig14 reproduces Figure 14: VQP for workloads with 16 and 32 rewrite
// options on Twitter (τ = 500 ms).
func RunFig14(cfg RunConfig) (*Report, error) {
	r := &Report{ID: "fig14", Title: "VQP for 16/32 rewrite options (paper Figure 14)"}
	for i, c := range fig14Cases {
		res, err := fig14Eval(cfg, i)
		if err != nil {
			return nil, err
		}
		r.Sections = append(r.Sections, ComparisonSection(c.label, "vqp", res))
	}
	r.AddNote("expected shape: MDP ≫ Bao/Baseline on hard queries; advantage shrinks at 32 options (planning gets pricier)")
	return r, nil
}

// RunFig15 reproduces Figure 15: AQRT for the same workloads.
func RunFig15(cfg RunConfig) (*Report, error) {
	r := &Report{ID: "fig15", Title: "AQRT for 16/32 rewrite options (paper Figure 15)"}
	for i, c := range fig14Cases {
		res, err := fig14Eval(cfg, i)
		if err != nil {
			return nil, err
		}
		r.Sections = append(r.Sections, ComparisonSection(c.label+" — total", "aqrt", res))
		r.Sections = append(r.Sections, ComparisonSection(c.label+" — plan/query split", "aqrt-split", res))
	}
	r.AddNote("paper example: 16 RO, 1-2 viable — baseline 1.13s, Bao 1.05s, MDP(Appr) 0.66s")
	return r, nil
}
