package harness

import (
	"reflect"
	"testing"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/qte"
	"github.com/maliva/maliva/internal/workload"
)

// parallelTestLabConfig returns a small-but-real lab configuration shared by
// the determinism tests below.
func parallelTestLabConfig(parallel int) (workload.Config, LabConfig) {
	dcfg := workload.TwitterConfig()
	dcfg.Rows = 6_000
	dcfg.Scale = 100e6 / float64(dcfg.Rows)
	lcfg := LabConfig{
		NumQueries: 24,
		QuerySpec:  workload.QuerySpec{NumPreds: 3, Seed: 5},
		Space:      core.HintOnlySpec(),
		Budget:     500,
		Seed:       9,
		Parallel:   parallel,
	}
	return dcfg, lcfg
}

// contextsEqual compares every observable ground-truth field of two context
// slices.
func contextsEqual(t *testing.T, tag string, a, b []*core.QueryContext) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d contexts vs %d", tag, len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Fingerprint != y.Fingerprint {
			t.Errorf("%s[%d]: fingerprint %x vs %x", tag, i, x.Fingerprint, y.Fingerprint)
		}
		if !reflect.DeepEqual(x.TrueMs, y.TrueMs) {
			t.Errorf("%s[%d]: TrueMs diverges", tag, i)
		}
		if !reflect.DeepEqual(x.Quality, y.Quality) {
			t.Errorf("%s[%d]: Quality diverges", tag, i)
		}
		if !reflect.DeepEqual(x.SelTrue, y.SelTrue) {
			t.Errorf("%s[%d]: SelTrue diverges", tag, i)
		}
		if !reflect.DeepEqual(x.SelSampled, y.SelSampled) {
			t.Errorf("%s[%d]: SelSampled diverges", tag, i)
		}
		if !reflect.DeepEqual(x.PlanEst, y.PlanEst) {
			t.Errorf("%s[%d]: PlanEst diverges", tag, i)
		}
		if x.BaselineMs != y.BaselineMs || x.BaselineOption != y.BaselineOption {
			t.Errorf("%s[%d]: baseline diverges", tag, i)
		}
	}
}

// TestBuildLabParallelDeterministic: the parallel ground-truth pipeline is
// bit-identical to the serial one across every split. Run with -race to
// exercise the concurrency claims of the engine and pipeline.
func TestBuildLabParallelDeterministic(t *testing.T) {
	dcfg, serialCfg := parallelTestLabConfig(1)
	ds, err := workload.Twitter(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := BuildLab(ds, serialCfg)
	if err != nil {
		t.Fatal(err)
	}

	// A fresh dataset for the parallel build keeps the two pipelines fully
	// independent (no shared stats cache warming order).
	ds2, err := workload.Twitter(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	_, parCfg := parallelTestLabConfig(4)
	par, err := BuildLab(ds2, parCfg)
	if err != nil {
		t.Fatal(err)
	}

	contextsEqual(t, "train", serial.Train, par.Train)
	contextsEqual(t, "val", serial.Val, par.Val)
	contextsEqual(t, "eval", serial.Eval, par.Eval)
}

// TestTrainAgentParallelDeterministic: per-seed training on a worker pool
// selects the same agent (same validation score, same policy decisions) as
// the serial loop.
func TestTrainAgentParallelDeterministic(t *testing.T) {
	dcfg, lcfg := parallelTestLabConfig(0)
	ds, err := workload.Twitter(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := BuildLab(ds, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	acfg := core.DefaultAgentConfig()
	acfg.MaxEpochs = 4
	acfg.MinEpochs = 2
	est := qte.NewAccurateQTE()

	serialAgent, serialScore := lab.TrainAgent(TrainAgentConfig{
		Agent: acfg, QTE: est, Seeds: []int64{7, 17, 23}, Parallel: 1,
	})
	parAgent, parScore := lab.TrainAgent(TrainAgentConfig{
		Agent: acfg, QTE: est, Seeds: []int64{7, 17, 23}, Parallel: 3,
	})
	if serialScore != parScore {
		t.Fatalf("validation score %v (parallel) vs %v (serial)", parScore, serialScore)
	}
	// The chosen agents must make identical decisions on every eval query.
	for i, ctx := range lab.Eval {
		envCfg := core.EnvConfig{Budget: lab.Budget, QTE: est, Beta: 1}
		a := serialAgent.Rewrite(core.NewEnv(envCfg, ctx))
		b := parAgent.Rewrite(core.NewEnv(envCfg, ctx))
		if a != b {
			t.Fatalf("eval query %d: outcome %+v (parallel) vs %+v (serial)", i, b, a)
		}
	}
}
