package harness

import (
	"strings"
	"testing"

	"github.com/maliva/maliva/internal/core"
)

func TestMetricsArithmetic(t *testing.T) {
	var m Metrics
	m.Observe(core.Outcome{Viable: true, PlanMs: 100, ExecMs: 200, TotalMs: 300, Quality: 1})
	m.Observe(core.Outcome{Viable: false, PlanMs: 300, ExecMs: 500, TotalMs: 800, Quality: 0.5})
	if m.Count != 2 || m.Viable != 1 {
		t.Fatalf("counts: %+v", m)
	}
	if got := m.VQP(); got != 50 {
		t.Errorf("VQP = %v", got)
	}
	if got := m.AQRT(); got != 0.55 {
		t.Errorf("AQRT = %v", got)
	}
	if got := m.AvgPlanSec(); got != 0.2 {
		t.Errorf("AvgPlanSec = %v", got)
	}
	if got := m.AvgExecSec(); got != 0.35 {
		t.Errorf("AvgExecSec = %v", got)
	}
	if got := m.AvgQuality(); got != 0.75 {
		t.Errorf("AvgQuality = %v", got)
	}
	var empty Metrics
	if empty.VQP() != 0 || empty.AQRT() != 0 || empty.AvgQuality() != 0 {
		t.Error("empty metrics should be zero")
	}
}

func TestBucketize(t *testing.T) {
	mk := func(viableTimes int) *core.QueryContext {
		times := make([]float64, 4)
		needs := make([][]int, 4)
		var ctx core.QueryContext
		for i := range times {
			if i < viableTimes {
				times[i] = 100
			} else {
				times[i] = 9999
			}
			needs[i] = []int{i}
			ctx.Options = append(ctx.Options, core.Option{Mask: uint32(i), HasHint: true})
		}
		ctx.TrueMs = times
		ctx.Quality = []float64{1, 1, 1, 1}
		ctx.NeedSels = needs
		return &ctx
	}
	ctxs := []*core.QueryContext{mk(0), mk(1), mk(1), mk(2), mk(4)}
	buckets := Bucketize(ctxs, 500, [][2]int{{0, 0}, {1, 1}, {2, 3}, {4, -1}})
	wantSizes := []int{1, 2, 1, 1}
	wantLabels := []string{"0", "1", "2-3", "≥4"}
	for i, b := range buckets {
		if len(b.Contexts) != wantSizes[i] {
			t.Errorf("bucket %s: %d contexts, want %d", b.Label, len(b.Contexts), wantSizes[i])
		}
		if b.Label != wantLabels[i] {
			t.Errorf("bucket label %q, want %q", b.Label, wantLabels[i])
		}
	}
}

func TestViablePlanHistogram(t *testing.T) {
	ctx := &core.QueryContext{
		Options:  []core.Option{{HasHint: true}, {HasHint: true, Mask: 1}},
		TrueMs:   []float64{100, 600},
		Quality:  []float64{1, 1},
		NeedSels: [][]int{{0}, {1}},
	}
	hist := ViablePlanHistogram([]*core.QueryContext{ctx, ctx}, 500)
	if hist[1] != 2 {
		t.Errorf("hist = %v", hist)
	}
	keys := SortedKeys(hist)
	if len(keys) != 1 || keys[0] != 1 {
		t.Errorf("keys = %v", keys)
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "demo"}
	r.AddSection("sec", []string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	r.AddNote("hello %d", 42)
	var sb strings.Builder
	r.Write(&sb)
	out := sb.String()
	for _, want := range []string{"== x: demo ==", "-- sec --", "333", "note: hello 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestComparisonSection(t *testing.T) {
	res := []EvalResult{
		{Rewriter: "A", Buckets: []string{"1", "2"}, Metrics: []Metrics{
			{Count: 2, Viable: 1, TotalMs: 1000},
			{Count: 4, Viable: 4, TotalMs: 2000},
		}},
	}
	sec := ComparisonSection("t", "vqp", res)
	if sec.Rows[0][1] != "50.0%" || sec.Rows[1][1] != "100.0%" {
		t.Errorf("vqp rows = %v", sec.Rows)
	}
	sec = ComparisonSection("t", "aqrt", res)
	if sec.Rows[0][1] != "0.500s" {
		t.Errorf("aqrt rows = %v", sec.Rows)
	}
	sec = ComparisonSection("t", "quality", res)
	if sec.Rows[0][1] != "0.00" {
		t.Errorf("quality rows = %v", sec.Rows)
	}
	split := ComparisonSection("t", "aqrt-split", res)
	if len(split.Columns) != 3 {
		t.Errorf("split columns = %v", split.Columns)
	}
}

func TestExperimentRegistry(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Errorf("expected 15 experiments, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if _, ok := ByID(e.ID); !ok {
			t.Errorf("ByID(%s) failed", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID should reject unknown ids")
	}
}

func TestHistogramRows(t *testing.T) {
	hist := map[int]int{0: 5, 1: 3, 2: 2, 7: 1}
	rows := histogramRows(hist, [][2]int{{0, 0}, {1, 2}, {3, -1}})
	want := [][2]string{{"0", "5"}, {"1-2", "5"}, {"≥3", "1"}}
	for i, w := range want {
		if rows[i][0] != w[0] || rows[i][1] != w[1] {
			t.Errorf("row %d = %v, want %v", i, rows[i], w)
		}
	}
}

func TestSampleContextsDeterministic(t *testing.T) {
	ctxs := make([]*core.QueryContext, 30)
	for i := range ctxs {
		ctxs[i] = &core.QueryContext{Fingerprint: uint64(i)}
	}
	a := sampleContexts(ctxs, 10, 5)
	b := sampleContexts(ctxs, 10, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampleContexts not deterministic")
		}
	}
	seen := map[*core.QueryContext]bool{}
	for _, c := range a {
		if seen[c] {
			t.Fatal("sampleContexts drew with replacement")
		}
		seen[c] = true
	}
	if got := sampleContexts(ctxs, 100, 5); len(got) != 30 {
		t.Errorf("oversized sample = %d", len(got))
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 || s != 2 {
		t.Errorf("meanStd = %v ± %v, want 5 ± 2", m, s)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Error("empty meanStd should be zero")
	}
}
