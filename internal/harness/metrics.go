package harness

import (
	"fmt"

	"github.com/maliva/maliva/internal/core"
)

// Metrics accumulates the paper's two headline measurements over a set of
// queries: Viable Query Percentage (VQP) and Average Query Response Time
// (AQRT), plus the planning/execution breakdown and average quality.
type Metrics struct {
	Count   int
	Viable  int
	PlanMs  float64
	ExecMs  float64
	TotalMs float64
	Quality float64
}

// Observe adds one rewriting outcome.
func (m *Metrics) Observe(o core.Outcome) {
	m.Count++
	if o.Viable {
		m.Viable++
	}
	m.PlanMs += o.PlanMs
	m.ExecMs += o.ExecMs
	m.TotalMs += o.TotalMs
	m.Quality += o.Quality
}

// VQP returns the viable-query percentage in [0,100].
func (m Metrics) VQP() float64 {
	if m.Count == 0 {
		return 0
	}
	return 100 * float64(m.Viable) / float64(m.Count)
}

// AQRT returns the average total response time in seconds.
func (m Metrics) AQRT() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.TotalMs / float64(m.Count) / 1000
}

// AvgPlanSec returns the average planning time in seconds.
func (m Metrics) AvgPlanSec() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.PlanMs / float64(m.Count) / 1000
}

// AvgExecSec returns the average query-execution time in seconds.
func (m Metrics) AvgExecSec() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.ExecMs / float64(m.Count) / 1000
}

// AvgQuality returns the mean result quality in [0,1].
func (m Metrics) AvgQuality() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.Quality / float64(m.Count)
}

// EvalResult holds one rewriter's metrics per bucket, in bucket order.
type EvalResult struct {
	Rewriter string
	Buckets  []string
	Metrics  []Metrics
	Overall  Metrics
}

// Evaluate runs a rewriter over bucketed evaluation contexts.
func Evaluate(rw core.Rewriter, buckets []*Bucket, budget float64) EvalResult {
	res := EvalResult{Rewriter: rw.Name()}
	for _, b := range buckets {
		var m Metrics
		for _, ctx := range b.Contexts {
			o := rw.Rewrite(ctx, budget)
			m.Observe(o)
			res.Overall.Observe(o)
		}
		res.Buckets = append(res.Buckets, b.Label)
		res.Metrics = append(res.Metrics, m)
	}
	return res
}

// FormatPct renders a percentage cell.
func FormatPct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// FormatSec renders a seconds cell.
func FormatSec(v float64) string { return fmt.Sprintf("%.3fs", v) }
