package harness

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/workload"
)

// TestCalibrationTwitter prints the difficulty profile of the Twitter
// workload: the viable-plan histogram, baseline failure rate, and plan-time
// spread. It asserts only loose invariants; its log output is the
// calibration instrument for the engine cost model (run with -v).
func TestCalibrationTwitter(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow")
	}
	cfg := workload.TwitterConfig()
	cfg.Rows = 60_000
	cfg.Scale = 100e6 / float64(cfg.Rows)
	ds, err := workload.Twitter(cfg)
	if err != nil {
		t.Fatalf("Twitter: %v", err)
	}
	queries := workload.GenerateQueries(ds, 200, workload.QuerySpec{NumPreds: 3, Seed: 5})
	ctxCfg := core.DefaultContextConfig(core.HintOnlySpec())
	const budget = 500.0

	hist := map[int]int{}
	baselineViable := map[int]int{}
	var allTimes []float64
	failWithViable, haveViable := 0, 0
	for _, q := range queries {
		ctx, err := core.BuildContext(ds.DB, q, ctxCfg)
		if err != nil {
			t.Fatalf("BuildContext: %v", err)
		}
		nv := ctx.NumViable(budget)
		hist[nv]++
		if ctx.BaselineMs <= budget {
			baselineViable[nv]++
		}
		if nv >= 1 {
			haveViable++
			if ctx.BaselineMs > budget {
				failWithViable++
			}
		}
		allTimes = append(allTimes, ctx.TrueMs...)
	}
	sort.Float64s(allTimes)
	pct := func(p float64) float64 { return allTimes[int(p*float64(len(allTimes)-1))] }
	t.Logf("plan-time spread ms: p5=%.0f p25=%.0f p50=%.0f p75=%.0f p95=%.0f max=%.0f",
		pct(0.05), pct(0.25), pct(0.50), pct(0.75), pct(0.95), pct(1.0))
	for _, k := range SortedKeys(hist) {
		t.Logf("viable=%d: queries=%d baselineViable=%d", k, hist[k], baselineViable[k])
	}
	if haveViable > 0 {
		t.Logf("optimizer failure stat: %d/%d (%.0f%%) queries with ≥1 viable plan had a non-viable baseline",
			failWithViable, haveViable, 100*float64(failWithViable)/float64(haveViable))
	}

	// Loose calibration invariants: difficulty must be spread out, and the
	// optimizer must fail on a meaningful fraction (the paper's 269/602).
	if hist[0] == len(queries) {
		t.Fatalf("every query has 0 viable plans — cost model too slow")
	}
	spread := 0
	for k, v := range hist {
		if k >= 1 && v > 0 {
			spread++
		}
	}
	if spread < 3 {
		t.Errorf("viable-plan histogram too narrow: %v", hist)
	}
	if haveViable > 0 {
		frac := float64(failWithViable) / float64(haveViable)
		if frac < 0.15 || frac > 0.9 {
			t.Errorf("optimizer failure fraction %.2f outside the plausible band [0.15, 0.9]", frac)
		}
	}
	if math.IsNaN(pct(0.5)) {
		t.Fatal("NaN plan time")
	}
	fmt.Println() // keep fmt imported for quick experiments
}
