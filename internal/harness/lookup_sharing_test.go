package harness

import (
	"testing"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/workload"
)

// TestBuildLabSharedLookupsDeterministic: building the lab through one
// lab-scope lookup cache yields bit-identical ground truth to the default
// per-context caches — cached index scans return exactly what a fresh scan
// would. Run with -race (the shared cache sees every build worker).
func TestBuildLabSharedLookupsDeterministic(t *testing.T) {
	dcfg, baseCfg := parallelTestLabConfig(4)
	ds, err := workload.Twitter(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := BuildLab(ds, baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Lookups != nil {
		t.Error("default build should not expose a shared cache")
	}

	ds2, err := workload.Twitter(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	_, sharedCfg := parallelTestLabConfig(4)
	sharedCfg.SharedLookups = true
	shared, err := BuildLab(ds2, sharedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Lookups == nil {
		t.Fatal("SharedLookups build did not expose the cache")
	}

	contextsEqual(t, "train", base.Train, shared.Train)
	contextsEqual(t, "val", base.Val, shared.Val)
	contextsEqual(t, "eval", base.Eval, shared.Eval)

	hits, misses := shared.Lookups.Stats()
	if hits == 0 {
		t.Error("shared cache saw no cross-context hits — sharing is not wired")
	}
	if misses == 0 {
		t.Error("shared cache reports zero misses")
	}
	t.Logf("shared lookup cache: %d hits, %d misses (%.0f%% hit rate, %d entries)",
		hits, misses, 100*float64(hits)/float64(hits+misses), shared.Lookups.Len())
}

// BenchmarkBuildLabLookupSharing compares the lab build with per-context
// lookup caches against one lab-scope shared cache, reporting the hit rate
// each policy achieves. Per-context hit rates are measured the same way the
// serial pipeline works: a fresh cache per context, stats summed.
func BenchmarkBuildLabLookupSharing(b *testing.B) {
	dcfg := workload.TwitterConfig()
	dcfg.Rows = 6_000
	dcfg.Scale = 100e6 / float64(dcfg.Rows)
	ds, err := workload.Twitter(dcfg)
	if err != nil {
		b.Fatal(err)
	}
	queries := workload.GenerateQueries(ds, 24, workload.QuerySpec{NumPreds: 3, Seed: 5})

	build := func(b *testing.B, shared bool) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		var hits, misses int64
		for i := 0; i < b.N; i++ {
			cache := engine.NewLookupCache()
			hits, misses = 0, 0
			for _, q := range queries {
				cfg := core.DefaultContextConfig(core.HintOnlySpec())
				cfg.Seed = 9
				if shared {
					cfg.Lookups = cache
				} else {
					cfg.Lookups = engine.NewLookupCache() // per-context scope
				}
				if _, err := core.BuildContext(ds.DB, q, cfg); err != nil {
					b.Fatal(err)
				}
				if !shared {
					h, m := cfg.Lookups.Stats()
					hits += h
					misses += m
				}
			}
			if shared {
				hits, misses = cache.Stats()
			}
		}
		if hits+misses > 0 {
			b.ReportMetric(100*float64(hits)/float64(hits+misses), "hit_%")
		}
	}

	b.Run("per-context", func(b *testing.B) { build(b, false) })
	b.Run("shared", func(b *testing.B) { build(b, true) })
}
