package harness

import (
	"testing"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/qte"
	"github.com/maliva/maliva/internal/workload"
)

// smallTwitterLab builds a reduced Twitter lab shared by pipeline tests.
func smallTwitterLab(t testing.TB, numQueries int) *Lab {
	t.Helper()
	cfg := workload.TwitterConfig()
	cfg.Rows = 60_000
	cfg.Scale = 100e6 / float64(cfg.Rows)
	ds, err := workload.Twitter(cfg)
	if err != nil {
		t.Fatalf("Twitter: %v", err)
	}
	lab, err := BuildLab(ds, LabConfig{
		NumQueries: numQueries,
		QuerySpec:  workload.QuerySpec{NumPreds: 3, Seed: 5},
		Space:      core.HintOnlySpec(),
		Budget:     500,
		Seed:       9,
	})
	if err != nil {
		t.Fatalf("BuildLab: %v", err)
	}
	return lab
}

// TestPipelineMDPBeatsBaseline trains the MDP agent with the accurate QTE
// and checks the paper's headline shape: MDP ≫ baseline on hard queries.
func TestPipelineMDPBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline training is slow")
	}
	lab := smallTwitterLab(t, 400)

	acc := qte.NewAccurateQTE()
	agent, valVQP := lab.TrainAgent(TrainAgentConfig{
		Agent: core.DefaultAgentConfig(),
		QTE:   acc,
		Seeds: []int64{7},
	})
	t.Logf("validation score: %.3f", valVQP)

	buckets := Bucketize(lab.Eval, lab.Budget, StandardBuckets())
	mdp := Evaluate(&core.MDPRewriter{Agent: agent, QTE: acc, Tag: "Accurate-QTE"}, buckets, lab.Budget)
	base := Evaluate(core.BaselineRewriter{}, buckets, lab.Budget)
	oracle := Evaluate(core.OracleRewriter{}, buckets, lab.Budget)

	for bi, label := range mdp.Buckets {
		t.Logf("bucket %s (n=%d): baseline=%.1f%% mdp=%.1f%% oracle=%.1f%% | AQRT base=%.2fs mdp=%.2fs",
			label, mdp.Metrics[bi].Count,
			base.Metrics[bi].VQP(), mdp.Metrics[bi].VQP(), oracle.Metrics[bi].VQP(),
			base.Metrics[bi].AQRT(), mdp.Metrics[bi].AQRT())
	}

	// Shape assertions on the hard buckets (1 and 2 viable plans).
	for bi, label := range mdp.Buckets {
		if label != "1" && label != "2" {
			continue
		}
		if mdp.Metrics[bi].Count < 5 {
			continue
		}
		if mdp.Metrics[bi].VQP() < base.Metrics[bi].VQP()+20 {
			t.Errorf("bucket %s: MDP VQP %.1f%% should beat baseline %.1f%% by ≥20 points",
				label, mdp.Metrics[bi].VQP(), base.Metrics[bi].VQP())
		}
	}
	if mdp.Overall.AQRT() >= base.Overall.AQRT() {
		t.Errorf("MDP overall AQRT %.2fs should beat baseline %.2fs",
			mdp.Overall.AQRT(), base.Overall.AQRT())
	}
}
