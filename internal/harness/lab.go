// Package harness wires the substrates together into the paper's
// experimental pipeline: generate workloads, build per-query ground-truth
// contexts, train QTEs and MDP agents with hold-out validation, evaluate all
// rewriters bucketed by query difficulty, and render each of §7's tables and
// figures as a text report.
package harness

import (
	"fmt"
	"io"
	"sort"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/qte"
	"github.com/maliva/maliva/internal/workload"
)

// Lab is one experimental setup: a dataset, an option space, a time budget,
// and the train/validation/evaluation context sets.
type Lab struct {
	DS     *workload.Dataset
	Spec   core.SpaceSpec
	Budget float64

	Train []*core.QueryContext
	Val   []*core.QueryContext
	Eval  []*core.QueryContext

	// Lookups is the shared predicate-lookup cache when the lab was built
	// with LabConfig.SharedLookups (nil otherwise).
	Lookups *engine.LookupCache
}

// LabConfig sizes a lab.
type LabConfig struct {
	NumQueries int
	QuerySpec  workload.QuerySpec
	Space      core.SpaceSpec
	Budget     float64
	Seed       int64
	// Parallel is the worker count for ground-truth construction: 0 means
	// GOMAXPROCS, 1 forces the serial path. Every context derives its
	// randomness from the per-query fingerprint, so the built lab is
	// bit-identical at any worker count.
	Parallel int
	// SharedLookups shares one predicate-lookup cache across the whole lab
	// build (all splits) instead of a fresh cache per context, so the index
	// scans of predicates that recur across queries run once. Cached scans
	// return the exact rows and entry counts a fresh scan would, so the
	// built lab is bit-identical either way; the tradeoff is one map
	// spanning every distinct predicate in the workload. The cache is
	// exposed as Lab.Lookups for hit-rate inspection.
	SharedLookups bool
	// Progress, when non-nil, receives coarse progress lines.
	Progress io.Writer
}

// BuildLab generates queries, splits them per the paper's protocol, and
// builds ground-truth contexts for every split. Context construction — the
// pipeline's dominant cost — fans out across queries on a bounded worker
// pool; results land in per-query slots so ordering and content match the
// serial path exactly.
func BuildLab(ds *workload.Dataset, cfg LabConfig) (*Lab, error) {
	queries := workload.GenerateQueries(ds, cfg.NumQueries, cfg.QuerySpec)
	trainQ, valQ, evalQ := workload.Split(queries, cfg.Seed)
	lab := &Lab{DS: ds, Spec: cfg.Space, Budget: cfg.Budget}
	ctxCfg := core.DefaultContextConfig(cfg.Space)
	ctxCfg.Seed = cfg.Seed
	// The outer per-query pool owns the worker budget; option executions
	// inside each context stay serial to avoid oversubscription.
	ctxCfg.Parallel = 1
	if cfg.SharedLookups {
		lab.Lookups = engine.NewLookupCache()
		ctxCfg.Lookups = lab.Lookups
	}
	build := func(qs []*engine.Query, tag string) ([]*core.QueryContext, error) {
		out := make([]*core.QueryContext, len(qs))
		err := core.RunIndexed(len(qs), cfg.Parallel, func(i int) error {
			ctx, err := core.BuildContext(ds.DB, qs[i], ctxCfg)
			if err != nil {
				return fmt.Errorf("harness: %s query %d: %w", tag, i, err)
			}
			out[i] = ctx
			return nil
		})
		if err != nil {
			return nil, err
		}
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "  built %d %s contexts\n", len(out), tag)
		}
		return out, nil
	}
	var err error
	if lab.Train, err = build(trainQ, "train"); err != nil {
		return nil, err
	}
	if lab.Val, err = build(valQ, "validation"); err != nil {
		return nil, err
	}
	if lab.Eval, err = build(evalQ, "evaluation"); err != nil {
		return nil, err
	}
	return lab, nil
}

// NewSamplingQTE trains the approximate QTE's cost model on the lab's
// training contexts.
func (l *Lab) NewSamplingQTE() (*qte.SamplingQTE, error) {
	s := qte.NewSamplingQTE()
	if err := s.Train(l.Train, 1.0); err != nil {
		return nil, err
	}
	return s, nil
}

// TrainAgentConfig bundles agent-training options.
type TrainAgentConfig struct {
	Agent core.AgentConfig
	QTE   core.Estimator
	Beta  float64
	// Seeds trains one agent per seed and keeps the best on validation VQP
	// (the paper's hold-out validation, §7.1).
	Seeds []int64
	// Parallel is the worker count for per-seed training: 0 means
	// GOMAXPROCS, 1 forces the serial path. Each seed's training is fully
	// determined by its own RNG, so the selected agent is identical at any
	// worker count.
	Parallel int
	// Contexts overrides the training set (defaults to l.Train).
	Contexts []*core.QueryContext
	// ValContexts overrides the validation set (defaults to l.Val).
	ValContexts []*core.QueryContext
}

// TrainAgent trains MDP agents with hold-out validation and returns the
// best, along with its validation VQP. The per-seed runs are independent
// (contexts are read-only during training) and fan out across workers; the
// winner is selected in seed order afterwards, exactly as the serial loop
// would.
func (l *Lab) TrainAgent(cfg TrainAgentConfig) (*core.Agent, float64) {
	if cfg.Beta <= 0 {
		cfg.Beta = 1
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{7, 17}
	}
	train := cfg.Contexts
	if train == nil {
		train = l.Train
	}
	val := cfg.ValContexts
	if val == nil {
		val = l.Val
	}
	if len(train) == 0 {
		panic("harness: TrainAgent with empty training set")
	}
	n := train[0].N()
	envCfg := core.EnvConfig{Budget: l.Budget, QTE: cfg.QTE, Beta: cfg.Beta}
	agents := make([]*core.Agent, len(cfg.Seeds))
	scores := make([]float64, len(cfg.Seeds))
	_ = core.RunIndexed(len(cfg.Seeds), cfg.Parallel, func(i int) error {
		acfg := cfg.Agent
		acfg.Seed = cfg.Seeds[i]
		agent := core.NewAgent(acfg, n)
		agent.Train(train, envCfg)
		agents[i] = agent
		scores[i] = l.validationScore(agent, cfg.QTE, cfg.Beta, val)
		return nil
	})
	var best *core.Agent
	bestScore := -1.0
	for i := range cfg.Seeds {
		if scores[i] > bestScore {
			best, bestScore = agents[i], scores[i]
		}
	}
	return best, bestScore
}

// validationScore returns the VQP (plus a small quality tiebreak) of an
// agent on the validation set.
func (l *Lab) validationScore(agent *core.Agent, est core.Estimator, beta float64, val []*core.QueryContext) float64 {
	if len(val) == 0 {
		return 0
	}
	viable, quality := 0, 0.0
	for _, ctx := range val {
		env := core.NewEnv(core.EnvConfig{Budget: l.Budget, QTE: est, Beta: beta}, ctx)
		out := agent.Rewrite(env)
		if out.Viable {
			viable++
		}
		quality += out.Quality
	}
	return float64(viable)/float64(len(val)) + 0.001*quality/float64(len(val))
}

// Bucket groups evaluation queries by their number of viable plans.
type Bucket struct {
	Label    string
	Lo, Hi   int // inclusive range of viable-plan counts
	Contexts []*core.QueryContext
}

// Bucketize splits contexts into viable-plan buckets. Each def is an
// inclusive [lo, hi] range; hi < 0 means "lo or more".
func Bucketize(contexts []*core.QueryContext, budget float64, defs [][2]int) []*Bucket {
	buckets := make([]*Bucket, len(defs))
	for i, d := range defs {
		label := fmt.Sprint(d[0])
		switch {
		case d[1] < 0:
			label = fmt.Sprintf("≥%d", d[0])
		case d[1] != d[0]:
			label = fmt.Sprintf("%d-%d", d[0], d[1])
		}
		buckets[i] = &Bucket{Label: label, Lo: d[0], Hi: d[1]}
	}
	for _, ctx := range contexts {
		nv := ctx.NumViable(budget)
		for _, b := range buckets {
			if nv >= b.Lo && (b.Hi < 0 || nv <= b.Hi) {
				b.Contexts = append(b.Contexts, ctx)
				break
			}
		}
	}
	return buckets
}

// StandardBuckets matches the paper's Fig. 12/13 x-axis: 1, 2, 3, 4 viable
// plans (0 and ≥5 reported separately in Table 2).
func StandardBuckets() [][2]int {
	return [][2]int{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, -1}}
}

// ViablePlanHistogram counts evaluation queries per viable-plan count —
// Table 2's rows.
func ViablePlanHistogram(contexts []*core.QueryContext, budget float64) map[int]int {
	out := make(map[int]int)
	for _, ctx := range contexts {
		out[ctx.NumViable(budget)]++
	}
	return out
}

// SortedKeys returns the histogram keys in order.
func SortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
