package harness

import (
	"fmt"
	"math"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/qte"
)

// RunFig21 reproduces Figure 21: learning curves (training and validation
// VQP versus number of training queries) and training-time curves for 8, 16
// and 32 rewrite options. Per the paper, the accurate QTE is used with unit
// costs of 100/60/50 ms respectively and τ = 500 ms; each point is repeated
// with several samples of the training set and reported as mean ± stddev.
func RunFig21(cfg RunConfig) (*Report, error) {
	const budget = 500.0
	r := &Report{ID: "fig21", Title: "Learning and training-time curves (paper Figure 21)"}

	sizes := []int{25, 50, 100, 150, 200}
	repeats := 3
	if cfg.Small {
		sizes = []int{25, 50, 100}
		repeats = 2
	}
	cases := []struct {
		numPreds int
		options  int
		unitCost float64
	}{
		{3, 8, 100},
		{4, 16, 60},
		{5, 32, 50},
	}
	for _, c := range cases {
		lab, err := labFor(cfg, labKey{
			dataset: "twitter", numPreds: c.numPreds, space: "hint",
			small: cfg.Small, numQueries: defaultQueries(cfg),
		}, budget)
		if err != nil {
			return nil, err
		}
		est := &qte.AccurateQTE{UnitCostMs: c.unitCost, BaseMs: 5}
		var rows [][]string
		for _, size := range sizes {
			if size > len(lab.Train) {
				continue
			}
			var trainVQPs, valVQPs, secs []float64
			for rep := 0; rep < repeats; rep++ {
				subset := sampleContexts(lab.Train, size, int64(1000*c.options+rep))
				acfg := stdAgentConfig(cfg)
				acfg.Seed = int64(100 + rep)
				acfg.MaxEpochs = 20
				agent := core.NewAgent(acfg, subset[0].N())
				start := time.Now()
				agent.Train(subset, core.EnvConfig{Budget: budget, QTE: est, Beta: 1})
				secs = append(secs, time.Since(start).Seconds())
				trainVQPs = append(trainVQPs, vqpOf(agent, est, subset, budget))
				valVQPs = append(valVQPs, vqpOf(agent, est, lab.Val, budget))
			}
			tm, ts := meanStd(trainVQPs)
			vm, vs := meanStd(valVQPs)
			sm, _ := meanStd(secs)
			rows = append(rows, []string{
				fmt.Sprint(size),
				fmt.Sprintf("%.1f±%.1f%%", tm, ts),
				fmt.Sprintf("%.1f±%.1f%%", vm, vs),
				fmt.Sprintf("%.1fs", sm),
			})
		}
		r.AddSection(
			fmt.Sprintf("%d rewrite options (unit cost %.0fms)", c.options, c.unitCost),
			[]string{"# training queries", "training VQP", "validation VQP", "training time"},
			rows,
		)
	}
	r.AddNote("paper: validation converges to training VQP at ~50/80/150 queries for 8/16/32 options; 32 options ≈ 150s for 150 queries on their hardware")
	return r, nil
}

// vqpOf evaluates an agent's VQP over contexts.
func vqpOf(agent *core.Agent, est core.Estimator, ctxs []*core.QueryContext, budget float64) float64 {
	if len(ctxs) == 0 {
		return 0
	}
	viable := 0
	for _, ctx := range ctxs {
		env := core.NewEnv(core.EnvConfig{Budget: budget, QTE: est, Beta: 1}, ctx)
		if agent.Rewrite(env).Viable {
			viable++
		}
	}
	return 100 * float64(viable) / float64(len(ctxs))
}

// sampleContexts draws size contexts without replacement, deterministically.
func sampleContexts(ctxs []*core.QueryContext, size int, seed int64) []*core.QueryContext {
	idx := make([]int, len(ctxs))
	for i := range idx {
		idx[i] = i
	}
	// Fisher-Yates with a simple LCG to avoid importing rand here.
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for i := len(idx) - 1; i > 0; i-- {
		j := next(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
	if size > len(idx) {
		size = len(idx)
	}
	out := make([]*core.QueryContext, size)
	for i := 0; i < size; i++ {
		out[i] = ctxs[idx[i]]
	}
	return out
}

// meanStd returns the mean and standard deviation.
func meanStd(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		sq += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(sq / float64(len(xs)))
}
