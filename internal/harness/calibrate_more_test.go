package harness

import (
	"testing"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/workload"
)

// TestCalibrationTaxiTPCH prints the difficulty profile of the NYC Taxi and
// TPC-H workloads (run with -v); it asserts the same loose invariants as the
// Twitter calibration.
func TestCalibrationTaxiTPCH(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow")
	}
	cases := []struct {
		name   string
		build  func() (*workload.Dataset, error)
		budget float64
	}{
		{"taxi", func() (*workload.Dataset, error) {
			cfg := workload.TaxiConfig()
			cfg.Rows = 60_000
			cfg.Scale = 500e6 / float64(cfg.Rows)
			return workload.Taxi(cfg)
		}, 1000},
		{"tpch", func() (*workload.Dataset, error) {
			cfg := workload.TPCHConfig()
			cfg.Rows = 60_000
			cfg.Scale = 300e6 / float64(cfg.Rows)
			return workload.TPCH(cfg)
		}, 500},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ds, err := tc.build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			queries := workload.GenerateQueries(ds, 200, workload.QuerySpec{NumPreds: 3, Seed: 5})
			ctxCfg := core.DefaultContextConfig(core.HintOnlySpec())
			hist := map[int]int{}
			baselineViable := map[int]int{}
			failWithViable, haveViable := 0, 0
			for _, q := range queries {
				ctx, err := core.BuildContext(ds.DB, q, ctxCfg)
				if err != nil {
					t.Fatalf("BuildContext: %v", err)
				}
				nv := ctx.NumViable(tc.budget)
				hist[nv]++
				if ctx.BaselineMs <= tc.budget {
					baselineViable[nv]++
				}
				if nv >= 1 {
					haveViable++
					if ctx.BaselineMs > tc.budget {
						failWithViable++
					}
				}
			}
			for _, k := range SortedKeys(hist) {
				t.Logf("viable=%d: queries=%d baselineViable=%d", k, hist[k], baselineViable[k])
			}
			if haveViable > 0 {
				t.Logf("optimizer failure stat: %d/%d (%.0f%%)",
					failWithViable, haveViable, 100*float64(failWithViable)/float64(haveViable))
			}
			if hist[0] == len(queries) {
				t.Fatal("every query has 0 viable plans")
			}
			spread := 0
			for k, v := range hist {
				if k >= 1 && v > 0 {
					spread++
				}
			}
			if spread < 3 {
				t.Errorf("viable-plan histogram too narrow: %v", hist)
			}
		})
	}
}
