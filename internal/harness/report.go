package harness

import (
	"fmt"
	"io"
	"strings"
)

// Report is a rendered experiment: one or more titled tables.
type Report struct {
	ID       string
	Title    string
	Sections []Section
	Notes    []string
}

// Section is one table of the report.
type Section struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddSection appends a table.
func (r *Report) AddSection(title string, columns []string, rows [][]string) {
	r.Sections = append(r.Sections, Section{Title: title, Columns: columns, Rows: rows})
}

// AddNote appends a free-text observation.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Write renders the report as aligned text tables.
func (r *Report) Write(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	for _, s := range r.Sections {
		if s.Title != "" {
			fmt.Fprintf(w, "\n-- %s --\n", s.Title)
		}
		writeTable(w, s.Columns, s.Rows)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// writeTable prints an aligned text table.
func writeTable(w io.Writer, columns []string, rows [][]string) {
	widths := make([]int, len(columns))
	for i, c := range columns {
		widths[i] = displayWidth(c)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && displayWidth(cell) > widths[i] {
				widths[i] = displayWidth(cell)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-displayWidth(cell)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(columns)
	sep := make([]string, len(columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

// displayWidth counts runes (good enough for the report's symbols).
func displayWidth(s string) int { return len([]rune(s)) }

// ComparisonSection renders the standard per-bucket VQP or AQRT table for a
// set of rewriter results.
func ComparisonSection(title, metric string, results []EvalResult) Section {
	if len(results) == 0 {
		return Section{Title: title}
	}
	cols := append([]string{"# viable plans"}, metricHeader(metric, results)...)
	var rows [][]string
	for bi, label := range results[0].Buckets {
		row := []string{label}
		for _, res := range results {
			m := res.Metrics[bi]
			switch metric {
			case "vqp":
				row = append(row, FormatPct(m.VQP()))
			case "aqrt":
				row = append(row, FormatSec(m.AQRT()))
			case "aqrt-split":
				row = append(row, FormatSec(m.AvgPlanSec()), FormatSec(m.AvgExecSec()))
			case "quality":
				row = append(row, fmt.Sprintf("%.2f", m.AvgQuality()))
			default:
				row = append(row, fmt.Sprint(m.Count))
			}
		}
		rows = append(rows, row)
	}
	return Section{Title: title, Columns: cols, Rows: rows}
}

func metricHeader(metric string, results []EvalResult) []string {
	var cols []string
	for _, res := range results {
		if metric == "aqrt-split" {
			cols = append(cols, res.Rewriter+" plan", res.Rewriter+" query")
		} else {
			cols = append(cols, res.Rewriter)
		}
	}
	return cols
}
