package harness

import (
	"fmt"
	"math/rand"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/qte"
	"github.com/maliva/maliva/internal/workload"
)

// RunAblation evaluates the design choices DESIGN.md calls out, none of
// which appear as figures in the paper but all of which justify the design:
//
//	(a) the learned policy versus a random exploration order and versus the
//	    brute-force naive strategy (value of the Q-network);
//	(b) the Fig. 7 shared-selectivity cost updates on/off (value of the
//	    transition function's cost sharing);
//	(c) robustness to the backend ignoring hints (challenge C2), sweeping
//	    the engine's HintDropProb.
func RunAblation(cfg RunConfig) (*Report, error) {
	const budget = 500.0
	r := &Report{ID: "abl", Title: "Ablations: policy, cost sharing, hint compliance"}

	lab, err := labFor(cfg, labKey{
		dataset: "twitter", numPreds: 3, space: "hint",
		small: cfg.Small, numQueries: defaultQueries(cfg),
	}, budget)
	if err != nil {
		return nil, err
	}
	acc := qte.NewAccurateQTE()
	agent, _ := lab.TrainAgent(TrainAgentConfig{Agent: stdAgentConfig(cfg), QTE: acc, Seeds: agentSeeds(cfg)})
	buckets := Bucketize(lab.Eval, budget, StandardBuckets())

	// (a) policy value.
	res := evalAll([]core.Rewriter{
		&core.MDPRewriter{Agent: agent, QTE: acc, Tag: "Accurate-QTE"},
		&randomOrderRewriter{QTE: acc},
		core.NaiveRewriter{QTE: acc, ExactOnly: true},
		core.OracleRewriter{},
	}, buckets, budget)
	r.Sections = append(r.Sections, ComparisonSection("(a) learned policy vs random order vs brute force — VQP", "vqp", res))

	// (b) cost sharing off: the QTE always pays the full per-option cost.
	noShare := &noSharingQTE{inner: acc}
	agentNoShare, _ := lab.TrainAgent(TrainAgentConfig{Agent: stdAgentConfig(cfg), QTE: noShare, Seeds: agentSeeds(cfg)})
	res = evalAll([]core.Rewriter{
		&core.MDPRewriter{Agent: agent, QTE: acc, Tag: "cost sharing on"},
		&core.MDPRewriter{Agent: agentNoShare, QTE: noShare, Tag: "cost sharing off"},
	}, buckets, budget)
	r.Sections = append(r.Sections, ComparisonSection("(b) Fig. 7 shared-selectivity cost updates — VQP", "vqp", res))

	// (c) hint compliance sweep: rebuild ground truth on engines that drop
	// forced hints with increasing probability.
	var rows [][]string
	for _, drop := range []float64{0, 0.1, 0.3} {
		vqp, baseVQP, err := hintDropRun(cfg, drop, budget)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", drop*100),
			FormatPct(vqp),
			FormatPct(baseVQP),
		})
	}
	r.AddSection("(c) VQP under hint non-compliance (challenge C2)",
		[]string{"hint drop prob", "MDP (Accurate-QTE)", "Baseline"}, rows)
	r.AddNote("expected: (a) learned ≥ random ≥ naive; (b) sharing on ≥ off; (c) MDP degrades gracefully as hints are ignored")
	return r, nil
}

// hintDropRun builds a small lab on an engine that drops hints and returns
// the MDP and baseline overall VQP.
func hintDropRun(cfg RunConfig, drop, budget float64) (float64, float64, error) {
	c := workload.TwitterConfig()
	c.Rows = 40_000
	c.Scale = 100e6 / float64(c.Rows)
	ds, err := workload.Twitter(c)
	if err != nil {
		return 0, 0, err
	}
	ds.DB.Profile.HintDropProb = drop
	nq := 240
	if !cfg.Small {
		nq = 600
	}
	lab, err := BuildLab(ds, LabConfig{
		NumQueries: nq,
		QuerySpec:  workload.QuerySpec{NumPreds: 3, Seed: 5},
		Space:      core.HintOnlySpec(),
		Budget:     budget,
		Seed:       9,
	})
	if err != nil {
		return 0, 0, err
	}
	acc := qte.NewAccurateQTE()
	acfg := stdAgentConfig(cfg)
	acfg.MaxEpochs = 10
	agent, _ := lab.TrainAgent(TrainAgentConfig{Agent: acfg, QTE: acc, Seeds: []int64{7}})
	rw := &core.MDPRewriter{Agent: agent, QTE: acc, Tag: "Accurate-QTE"}
	var m, b Metrics
	for _, ctx := range lab.Eval {
		m.Observe(rw.Rewrite(ctx, budget))
		b.Observe(core.BaselineRewriter{}.Rewrite(ctx, budget))
	}
	return m.VQP(), b.VQP(), nil
}

// randomOrderRewriter explores options in a deterministic per-query random
// order with the same termination rule as the MDP — the "no learning"
// control.
type randomOrderRewriter struct {
	QTE core.Estimator
}

func (r *randomOrderRewriter) Name() string { return "Random order" }

func (r *randomOrderRewriter) Rewrite(ctx *core.QueryContext, budget float64) core.Outcome {
	env := core.NewEnv(core.EnvConfig{Budget: budget, QTE: r.QTE, Beta: 1}, ctx)
	rng := rand.New(rand.NewSource(int64(ctx.Fingerprint)))
	order := rng.Perm(ctx.N())
	for _, a := range order {
		if env.Done() {
			break
		}
		env.Step(a)
	}
	return env.Outcome()
}

// noSharingQTE wraps an estimator but never lets collected selectivities
// reduce later estimation costs (Fig. 7 disabled).
type noSharingQTE struct {
	inner core.Estimator
}

func (n *noSharingQTE) Name() string { return n.inner.Name() + ", no sharing" }

func (n *noSharingQTE) InitialCost(ctx *core.QueryContext, i int) float64 {
	return n.inner.InitialCost(ctx, i)
}

func (n *noSharingQTE) CostNow(ctx *core.QueryContext, i int, _ *core.SelCache) float64 {
	return n.inner.CostNow(ctx, i, core.NewSelCache())
}

func (n *noSharingQTE) Estimate(ctx *core.QueryContext, i int, _ *core.SelCache) (float64, float64) {
	return n.inner.Estimate(ctx, i, core.NewSelCache())
}
