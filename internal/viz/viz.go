// Package viz implements visualization binning and result-quality functions
// used by Maliva's quality-aware rewriting (§6): grid binning for heatmaps,
// pixel rasterization for scatterplots, Jaccard similarity on pixel sets, and
// a Sample+Seek-style distribution-precision metric for count distributions.
package viz

import (
	"math"

	"github.com/maliva/maliva/internal/engine"
)

// Grid is a fixed-resolution raster over a geographic extent.
type Grid struct {
	Extent engine.Rect
	W, H   int
}

// NewGrid creates a grid; width and height must be positive.
func NewGrid(extent engine.Rect, w, h int) Grid {
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	return Grid{Extent: extent, W: w, H: h}
}

// Cell maps a point to its cell index, or -1 if outside the extent.
func (g Grid) Cell(p engine.Point) int {
	w := g.Extent.MaxLon - g.Extent.MinLon
	h := g.Extent.MaxLat - g.Extent.MinLat
	if w <= 0 || h <= 0 || !g.Extent.Contains(p) {
		return -1
	}
	x := int(float64(g.W) * (p.Lon - g.Extent.MinLon) / w)
	y := int(float64(g.H) * (p.Lat - g.Extent.MinLat) / h)
	if x >= g.W {
		x = g.W - 1
	}
	if y >= g.H {
		y = g.H - 1
	}
	return y*g.W + x
}

// Rasterize returns the set of occupied cells for a point set — the
// scatterplot visualization result at this resolution.
func (g Grid) Rasterize(points []engine.Point) map[int]struct{} {
	out := make(map[int]struct{})
	for _, p := range points {
		if c := g.Cell(p); c >= 0 {
			out[c] = struct{}{}
		}
	}
	return out
}

// Counts returns per-cell weighted counts — the heatmap visualization result.
func (g Grid) Counts(points []engine.Point, weight float64) map[int]float64 {
	out := make(map[int]float64)
	for _, p := range points {
		if c := g.Cell(p); c >= 0 {
			out[c] += weight
		}
	}
	return out
}

// JaccardPixels computes the Jaccard similarity between two occupied-pixel
// sets: |A∩B| / |A∪B|. Two empty sets have similarity 1.
func JaccardPixels(a, b map[int]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for c := range a {
		if _, ok := b[c]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// JaccardPoints rasterizes both point sets on the grid and returns the
// Jaccard similarity of the resulting pixel sets — the paper's Fig. 9
// quality function for scatterplots.
func JaccardPoints(g Grid, orig, approx []engine.Point) float64 {
	return JaccardPixels(g.Rasterize(orig), g.Rasterize(approx))
}

// DistributionPrecision compares two count distributions (heatmaps, pie
// charts) as 1 − ½·Σ|p_i − q_i| over normalized distributions — the
// Sample+Seek-style distribution precision in [0,1].
func DistributionPrecision(orig, approx map[int]float64) float64 {
	var sumO, sumA float64
	for _, v := range orig {
		sumO += v
	}
	for _, v := range approx {
		sumA += v
	}
	if sumO == 0 && sumA == 0 {
		return 1
	}
	if sumO == 0 || sumA == 0 {
		return 0
	}
	keys := make(map[int]struct{}, len(orig)+len(approx))
	for k := range orig {
		keys[k] = struct{}{}
	}
	for k := range approx {
		keys[k] = struct{}{}
	}
	var l1 float64
	for k := range keys {
		l1 += math.Abs(orig[k]/sumO - approx[k]/sumA)
	}
	p := 1 - l1/2
	if p < 0 {
		p = 0
	}
	return p
}
