package viz

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/maliva/maliva/internal/engine"
)

func testGrid() Grid {
	return NewGrid(engine.Rect{MinLon: 0, MinLat: 0, MaxLon: 10, MaxLat: 10}, 10, 10)
}

func TestGridCell(t *testing.T) {
	g := testGrid()
	cases := []struct {
		p    engine.Point
		want int
	}{
		{engine.Point{Lon: 0.5, Lat: 0.5}, 0},
		{engine.Point{Lon: 9.5, Lat: 0.5}, 9},
		{engine.Point{Lon: 0.5, Lat: 9.5}, 90},
		{engine.Point{Lon: 10, Lat: 10}, 99}, // boundary clamps into the last cell
		{engine.Point{Lon: -1, Lat: 5}, -1},  // outside
		{engine.Point{Lon: 5, Lat: 11}, -1},
	}
	for _, tc := range cases {
		if got := g.Cell(tc.p); got != tc.want {
			t.Errorf("Cell(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
}

// TestGridCellInRange: any point inside the extent maps to a valid cell.
func TestGridCellInRange(t *testing.T) {
	g := testGrid()
	prop := func(lonRaw, latRaw float64) bool {
		lon := math.Mod(math.Abs(lonRaw), 10)
		lat := math.Mod(math.Abs(latRaw), 10)
		if math.IsNaN(lon) || math.IsNaN(lat) {
			return true
		}
		c := g.Cell(engine.Point{Lon: lon, Lat: lat})
		return c >= 0 && c < 100
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestJaccardProperties: symmetry, identity, bounds — for random pixel sets.
func TestJaccardProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen := func() map[int]struct{} {
			s := make(map[int]struct{})
			for i := 0; i < rng.Intn(50); i++ {
				s[rng.Intn(100)] = struct{}{}
			}
			return s
		}
		a, b := gen(), gen()
		jab := JaccardPixels(a, b)
		jba := JaccardPixels(b, a)
		if jab != jba {
			return false
		}
		if jab < 0 || jab > 1 {
			return false
		}
		if JaccardPixels(a, a) != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestJaccardKnownValues(t *testing.T) {
	a := map[int]struct{}{1: {}, 2: {}, 3: {}}
	b := map[int]struct{}{2: {}, 3: {}, 4: {}}
	if got := JaccardPixels(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Jaccard = %v, want 0.5", got)
	}
	if got := JaccardPixels(nil, nil); got != 1 {
		t.Errorf("empty-empty = %v, want 1", got)
	}
	if got := JaccardPixels(a, nil); got != 0 {
		t.Errorf("a-empty = %v, want 0", got)
	}
}

func TestJaccardPointsSubsetSample(t *testing.T) {
	g := testGrid()
	rng := rand.New(rand.NewSource(9))
	var orig []engine.Point
	for i := 0; i < 2000; i++ {
		orig = append(orig, engine.Point{Lon: rng.Float64() * 10, Lat: rng.Float64() * 10})
	}
	// A 50% subsample keeps a high pixel Jaccard (pixels collapse points).
	var sample []engine.Point
	for i, p := range orig {
		if i%2 == 0 {
			sample = append(sample, p)
		}
	}
	j := JaccardPoints(g, orig, sample)
	if j < 0.5 || j > 1 {
		t.Errorf("subsample Jaccard = %v", j)
	}
	full := JaccardPoints(g, orig, orig)
	if full != 1 {
		t.Errorf("identical point sets Jaccard = %v", full)
	}
}

func TestDistributionPrecision(t *testing.T) {
	a := map[int]float64{0: 10, 1: 10}
	if got := DistributionPrecision(a, a); got != 1 {
		t.Errorf("identical distributions = %v", got)
	}
	// Scaling invariance.
	b := map[int]float64{0: 100, 1: 100}
	if got := DistributionPrecision(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("scaled distributions = %v", got)
	}
	// Disjoint support → 0.
	c := map[int]float64{5: 20}
	if got := DistributionPrecision(a, c); got != 0 {
		t.Errorf("disjoint = %v", got)
	}
	// Half overlap.
	d := map[int]float64{0: 20}
	if got := DistributionPrecision(a, d); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("half overlap = %v, want 0.5", got)
	}
	if got := DistributionPrecision(nil, nil); got != 1 {
		t.Errorf("empty-empty = %v", got)
	}
	if got := DistributionPrecision(a, nil); got != 0 {
		t.Errorf("a-empty = %v", got)
	}
}

func TestCountsWeighting(t *testing.T) {
	g := testGrid()
	pts := []engine.Point{{Lon: 1, Lat: 1}, {Lon: 1.2, Lat: 1.1}, {Lon: 9, Lat: 9}}
	counts := g.Counts(pts, 5)
	var sum float64
	for _, v := range counts {
		sum += v
	}
	if sum != 15 {
		t.Errorf("weighted sum = %v, want 15", sum)
	}
	if counts[g.Cell(pts[0])] != 10 {
		t.Errorf("co-located points should accumulate: %v", counts[g.Cell(pts[0])])
	}
}

func TestNewGridClampsDimensions(t *testing.T) {
	g := NewGrid(engine.Rect{MaxLon: 1, MaxLat: 1}, 0, -3)
	if g.W != 1 || g.H != 1 {
		t.Errorf("grid dims = %dx%d", g.W, g.H)
	}
}

func TestRasterizeEmptyExtent(t *testing.T) {
	g := NewGrid(engine.Rect{}, 4, 4)
	px := g.Rasterize([]engine.Point{{Lon: 0, Lat: 0}})
	if len(px) != 0 {
		t.Errorf("degenerate extent should produce no pixels, got %v", px)
	}
}
