package core

import "math"

// Rewriter is a query-rewriting strategy: given a query's context and a time
// budget, decide which rewritten query to run and account for the planning
// time spent deciding. All comparators in the paper's §7 implement this.
type Rewriter interface {
	Name() string
	Rewrite(ctx *QueryContext, budget float64) Outcome
}

// BaselineRewriter is the paper's baseline: no rewriting — the backend
// optimizer plans the original query, with (virtually) zero middleware
// planning time.
type BaselineRewriter struct{}

// Name implements Rewriter.
func (BaselineRewriter) Name() string { return "Baseline" }

// Rewrite implements Rewriter.
func (BaselineRewriter) Rewrite(ctx *QueryContext, budget float64) Outcome {
	return Outcome{
		Option:   ctx.BaselineOption,
		PlanMs:   0,
		ExecMs:   ctx.BaselineMs,
		TotalMs:  ctx.BaselineMs,
		Viable:   ctx.BaselineMs <= budget,
		Quality:  1,
		Explored: 0,
	}
}

// NaiveRewriter is the brute-force strategy (§7.5 "Naive"): estimate every
// rewritten query with the QTE, pay the full estimation cost, then pick the
// fastest estimate. With an expensive QTE the planning time alone can blow
// the budget — the paper's challenge C1.
type NaiveRewriter struct {
	QTE Estimator
	// ExactOnly restricts the enumeration to exact (non-approximate)
	// options, which is what the paper's Naive comparator considers.
	ExactOnly bool
}

// Name implements Rewriter.
func (r NaiveRewriter) Name() string { return "Naive (" + r.QTE.Name() + ")" }

// Rewrite implements Rewriter.
func (r NaiveRewriter) Rewrite(ctx *QueryContext, budget float64) Outcome {
	cache := NewSelCache()
	plan := 0.0
	best, bestEst := -1, math.Inf(1)
	explored := 0
	for i := range ctx.Options {
		if r.ExactOnly && ctx.Options[i].IsApprox() {
			continue
		}
		est, cost := r.QTE.Estimate(ctx, i, cache)
		plan += cost
		explored++
		if est < bestEst {
			best, bestEst = i, est
		}
	}
	exec := ctx.TrueMs[best]
	total := plan + exec
	return Outcome{
		Option:   best,
		PlanMs:   plan,
		ExecMs:   exec,
		TotalMs:  total,
		Viable:   total <= budget,
		Quality:  ctx.Quality[best],
		Explored: explored,
	}
}

// MDPRewriter wraps a trained agent with an environment configuration: the
// Maliva rewriter proper (§5.2).
type MDPRewriter struct {
	Agent  *Agent
	QTE    Estimator
	Beta   float64 // 1 for hint-only spaces
	Tag    string  // display name suffix, e.g. "Accurate-QTE"
	Jitter float64 // initial-cost jitter (see EnvConfig)
}

// Name implements Rewriter.
func (r *MDPRewriter) Name() string {
	if r.Tag != "" {
		return "MDP (" + r.Tag + ")"
	}
	return "MDP (" + r.QTE.Name() + ")"
}

// Rewrite implements Rewriter. A policy is trained for one option-space
// shape — the Q-network's state encoding sizes with |Ω| — so a query whose
// predicate count yields a different option count cannot go through the
// agent (the forward pass would panic mid-request). Such queries degrade
// to the no-rewrite baseline: correct and budget-accounted, just
// unoptimized. Serving binaries train on 3-predicate workloads, so this is
// the path 1/2-predicate frontend requests take.
func (r *MDPRewriter) Rewrite(ctx *QueryContext, budget float64) Outcome {
	if r.Agent.NumOpts != len(ctx.Options) {
		return BaselineRewriter{}.Rewrite(ctx, budget)
	}
	env := NewEnv(EnvConfig{Budget: budget, QTE: r.QTE, Beta: r.betaOrDefault(), InitialCostJitter: r.Jitter}, ctx)
	return r.Agent.Rewrite(env)
}

func (r *MDPRewriter) betaOrDefault() float64 {
	if r.Beta <= 0 {
		return 1
	}
	return r.Beta
}

// QualityOracle is the quality-aware upper bound for spaces that include
// the approximate tier: serve exact when any exact option fits the budget;
// otherwise serve the highest-quality approximate option that fits
// ("approximate now" beats "exact late"); if nothing fits, fall back to the
// fastest option overall. Zero planning cost, like OracleRewriter — it
// bounds what a learned policy over the same space could achieve.
type QualityOracle struct{}

// Name implements Rewriter.
func (QualityOracle) Name() string { return "Quality-Oracle" }

// Rewrite implements Rewriter.
func (QualityOracle) Rewrite(ctx *QueryContext, budget float64) Outcome {
	bestExact, bestExactT := -1, math.Inf(1)
	bestApprox, bestApproxQ := -1, -1.0
	fastest, fastestT := -1, math.Inf(1)
	for i, o := range ctx.Options {
		t := ctx.TrueMs[i]
		if t < fastestT {
			fastest, fastestT = i, t
		}
		if !o.IsApprox() {
			if t < bestExactT {
				bestExact, bestExactT = i, t
			}
			continue
		}
		if t <= budget {
			// Among budget-feasible approximate options prefer quality,
			// breaking ties toward the faster one.
			if q := ctx.Quality[i]; q > bestApproxQ ||
				(q == bestApproxQ && bestApprox >= 0 && t < ctx.TrueMs[bestApprox]) {
				bestApprox, bestApproxQ = i, q
			}
		}
	}
	pick := fastest
	switch {
	case bestExact >= 0 && bestExactT <= budget:
		pick = bestExact
	case bestApprox >= 0:
		pick = bestApprox
	}
	t := ctx.TrueMs[pick]
	return Outcome{
		Option:  pick,
		ExecMs:  t,
		TotalMs: t,
		Viable:  t <= budget,
		Quality: ctx.Quality[pick],
	}
}

// OracleRewriter picks the truly fastest exact option with zero planning
// cost — an upper bound used in tests and ablations, not a paper comparator.
type OracleRewriter struct{}

// Name implements Rewriter.
func (OracleRewriter) Name() string { return "Oracle" }

// Rewrite implements Rewriter.
func (OracleRewriter) Rewrite(ctx *QueryContext, budget float64) Outcome {
	best, bestT := -1, math.Inf(1)
	for i, o := range ctx.Options {
		if o.IsApprox() {
			continue
		}
		if ctx.TrueMs[i] < bestT {
			best, bestT = i, ctx.TrueMs[i]
		}
	}
	return Outcome{
		Option:  best,
		ExecMs:  bestT,
		TotalMs: bestT,
		Viable:  bestT <= budget,
		Quality: 1,
	}
}
