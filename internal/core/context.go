package core

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/viz"
)

// QueryContext captures everything Maliva (and its baselines) can observe
// about one query: the option set Ω, the true execution time and result
// quality of every rewritten query, the true and sample-estimated predicate
// selectivities, and the optimizer's plan estimates. Contexts are built once
// per query (the paper's offline experience collection) and then replayed by
// MDP training, online rewriting, and every comparator — which keeps all
// approaches measured against identical ground truth.
type QueryContext struct {
	Query   *engine.Query
	Options []Option

	// TrueMs[i] is the actual (virtual) execution time of RQ_i.
	TrueMs []float64
	// Quality[i] is F(r(Q), r(RQ_i)) ∈ [0,1]; 1 for exact options.
	Quality []float64
	// NeedSels[i] lists predicate positions whose selectivity a QTE must
	// collect before estimating RQ_i.
	NeedSels [][]int

	// SelTrue[p] is the exact selectivity of predicate p; SelSampled[p] is a
	// deterministic sampling-based estimate of it (with binomial noise).
	SelTrue    []float64
	SelSampled []float64

	// PlanEst[i] is the optimizer's estimate for RQ_i (Bao's features).
	PlanEst []engine.PlanEstimate

	// BaselineMs is the execution time of the original query when the
	// backend optimizer picks the plan (the no-rewriting baseline), and
	// BaselineOption is the Ω index matching that choice, or -1.
	BaselineMs     float64
	BaselineOption int

	// Fingerprint is a stable hash of the query, seeding deterministic
	// per-query randomness (sampling noise, cost jitter).
	Fingerprint uint64

	// Scale is the main table's ScaleFactor (for LIMIT sizing).
	Scale float64
	// EstRows is the optimizer's cardinality estimate for the original query.
	EstRows float64
	// NReal and InnerNReal are the real-scale row counts of the main and
	// joined tables (features for learned QTEs).
	NReal      float64
	InnerNReal float64
}

// N returns the number of rewriting options.
func (c *QueryContext) N() int { return len(c.Options) }

// NumViable returns the number of options whose true execution time alone is
// within the budget — the paper's per-query difficulty metric ("number of
// viable plans"). Approximation options are excluded, matching the paper's
// definition over physical plans of the original query.
func (c *QueryContext) NumViable(budget float64) int {
	n := 0
	for i, o := range c.Options {
		if o.IsApprox() {
			continue
		}
		if c.TrueMs[i] <= budget {
			n++
		}
	}
	return n
}

// BestExactMs returns the minimum true time over exact options.
func (c *QueryContext) BestExactMs() float64 {
	best := -1.0
	for i, o := range c.Options {
		if o.IsApprox() {
			continue
		}
		if best < 0 || c.TrueMs[i] < best {
			best = c.TrueMs[i]
		}
	}
	return best
}

// ContextConfig controls context construction.
type ContextConfig struct {
	Space SpaceSpec
	// SampleRows is the virtual count(*) sample size behind SelSampled
	// (binomial noise scale). Default 1000.
	SampleRows int
	// QualityGrid is the raster used for Jaccard quality. Default 128×128
	// over the query's spatial extent (or the table's).
	QualityGridW, QualityGridH int
	// Seed decorrelates sampling noise across experiments.
	Seed int64
	// Parallel is the worker count for the per-option execution loop:
	// 0 means GOMAXPROCS, 1 forces the serial path. Every option execution
	// is independent and derives its randomness from the plan fingerprint,
	// so the built context is bit-identical at any worker count.
	// DefaultContextConfig sets 1: parallelism is opt-in, so online serving
	// paths don't spawn a worker pool per request.
	Parallel int
	// Lookups optionally shares a predicate-lookup cache across contexts:
	// a serving layer (or lab build) over one immutable dataset can hold a
	// single cache so repeated predicates skip the index scan entirely.
	// nil keeps the existing per-context cache. Sharing never changes an
	// output bit — cached lookups return the exact rows and entry counts a
	// fresh scan would (see engine.LookupCache).
	Lookups *engine.LookupCache
	// Yield, when non-nil, is passed to every engine execution the build
	// performs (baseline plus each option) and called between options. A
	// context build runs |Ω|+1 query executions back to back — a background
	// build (speculative prefetch planning) passes runtime.Gosched here so
	// it never holds a processor for the whole burst while live requests
	// wait. Yielding cannot change the built context: option outcomes are
	// pure functions of (seed, plan fingerprint), not of scheduling.
	Yield func()
}

// DefaultContextConfig returns the standard configuration for a space.
func DefaultContextConfig(space SpaceSpec) ContextConfig {
	return ContextConfig{Space: space, SampleRows: 1000, QualityGridW: 128, QualityGridH: 128, Seed: 1, Parallel: 1}
}

// BuildContext executes every rewritten query for q once and assembles the
// ground-truth context. This is the expensive offline step (the paper pays
// it during training-data collection); everything downstream replays it.
func BuildContext(db *engine.DB, q *engine.Query, cfg ContextConfig) (*QueryContext, error) {
	t := db.Table(q.Table)
	if t == nil {
		return nil, fmt.Errorf("core: unknown table %q", q.Table)
	}
	opts := EnumerateOptions(db, q, cfg.Space)
	if len(opts) == 0 {
		return nil, fmt.Errorf("core: no rewriting options for query on %q", q.Table)
	}
	ctx := &QueryContext{
		Query:       q,
		Options:     opts,
		TrueMs:      make([]float64, len(opts)),
		Quality:     make([]float64, len(opts)),
		NeedSels:    make([][]int, len(opts)),
		PlanEst:     make([]engine.PlanEstimate, len(opts)),
		Fingerprint: queryFingerprint(q, cfg.Seed),
		Scale:       t.ScaleFactor,
		NReal:       t.RealRows(),
	}
	if q.Join != nil {
		if inner := db.Table(q.Join.Table); inner != nil {
			ctx.InnerNReal = inner.RealRows()
		}
	}

	// Memoized index lookups: the |Ω| option executions (plus the baseline
	// run and true-selectivity collection) keep scanning the same indexes
	// for the same predicates; share one scan per predicate. A caller-owned
	// cache (cfg.Lookups) extends the sharing across contexts. Context
	// construction always attaches a cache — the engine's zero-allocation
	// visitor paths (BTree.Visit / Cursor) only take over where a scan is
	// never shared: join probes inside each execution and cache-less
	// true-selectivity calls.
	cache := cfg.Lookups
	if cache == nil {
		cache = engine.NewLookupCache()
	}

	// Optimizer view of the original query (baseline + LIMIT sizing).
	chosen := db.ChoosePlan(q)
	ctx.EstRows = chosen.EstRows
	baseRes, baseStats, err := db.RunCachedYield(q, engine.Hint{}, cache, cfg.Yield)
	if err != nil {
		return nil, fmt.Errorf("core: baseline run: %w", err)
	}
	ctx.BaselineMs = baseStats.SimMs
	ctx.BaselineOption = -1

	// Quality grid over the query's spatial extent when present.
	grid := qualityGrid(t, q, cfg)
	origPixels := grid.Rasterize(baseRes.Points)

	// Exact aggregates for sketch-option quality: the true matched-row
	// count is the baseline's cardinality; the true distinct-word count is
	// computed once here (it is exactly the expensive scan the HLL action
	// exists to avoid, paid only when the space contains an HLL rule).
	trueCount := float64(len(baseRes.RowIDs))
	trueDistinct := -1.0
	for _, o := range opts {
		if o.Approx.Kind == ApproxHLL {
			trueDistinct = float64(engine.DistinctWordsExact(t, baseRes.RowIDs, t.Sketch.TextCol))
			break
		}
	}

	// True selectivities and deterministic sampled estimates.
	ctx.SelTrue = db.TrueSelectivitiesCached(q, cache)
	ctx.SelSampled = make([]float64, len(ctx.SelTrue))
	sampleRows := cfg.SampleRows
	if sampleRows <= 0 {
		sampleRows = 1000
	}
	rng := rand.New(rand.NewSource(int64(ctx.Fingerprint)))
	for i, s := range ctx.SelTrue {
		ctx.SelSampled[i] = binomialEstimate(rng, s, sampleRows)
	}

	// Execute every rewritten query. Each option writes only its own slot,
	// so the loop parallelizes without changing a single output bit; engine
	// noise is a pure function of (seed, plan fingerprint), not run order.
	buildOption := func(i int) error {
		if cfg.Yield != nil {
			cfg.Yield()
		}
		o := opts[i]
		rq, h := BuildRQ(q, o, ctx.EstRows, ctx.Scale)
		res, stats, err := db.RunCachedYield(rq, h, cache, cfg.Yield)
		if err != nil {
			return fmt.Errorf("core: option %s: %w", o.Label(len(q.Preds)), err)
		}
		ctx.TrueMs[i] = stats.SimMs
		ctx.NeedSels[i] = NeededSels(q, o)
		ctx.PlanEst[i] = db.EstimatePlan(rq, h)
		switch {
		case res.HasAgg:
			// Sketch-served aggregates have no pixels; quality is relative
			// aggregate accuracy (QTE-comparable: 1 = exact, 0 = useless).
			truth := trueCount
			if o.Approx.Kind == ApproxHLL {
				truth = trueDistinct
			}
			ctx.Quality[i] = aggQuality(res.AggValue, truth)
		case o.IsApprox():
			ctx.Quality[i] = viz.JaccardPixels(origPixels, grid.Rasterize(res.Points))
		default:
			ctx.Quality[i] = 1
		}
		return nil
	}
	if err := runIndexed(len(opts), cfg.Parallel, buildOption); err != nil {
		return nil, err
	}
	// Identify the baseline's plan among exact options (last match, as in
	// the original serial loop).
	for i, o := range opts {
		if !o.IsApprox() && o.HasHint &&
			o.Mask == engine.MaskFromPositions(chosen.Positions) &&
			(q.Join == nil || o.Join == chosen.Join) {
			ctx.BaselineOption = i
		}
	}
	return ctx, nil
}

// aggQuality maps an aggregate estimate's relative error onto [0,1]:
// 1 − min(1, |est − truth| / max(truth, 1)).
func aggQuality(est, truth float64) float64 {
	relErr := math.Abs(est-truth) / math.Max(truth, 1)
	if relErr > 1 {
		relErr = 1
	}
	return 1 - relErr
}

// qualityGrid picks the raster extent: the query's geo predicate box when
// present, otherwise the whole table grid statistic extent.
func qualityGrid(t *engine.Table, q *engine.Query, cfg ContextConfig) viz.Grid {
	w, h := cfg.QualityGridW, cfg.QualityGridH
	if w <= 0 {
		w = 128
	}
	if h <= 0 {
		h = 128
	}
	for _, p := range q.Preds {
		if p.Kind == engine.PredGeo {
			return viz.NewGrid(p.Box, w, h)
		}
	}
	// Fall back to the extent of the first point column.
	for _, c := range t.Cols {
		if c.Type == engine.ColPoint && len(c.Points) > 0 {
			ext := engine.PointRect(c.Points[0])
			for _, pt := range c.Points[1:] {
				ext = ext.Extend(engine.PointRect(pt))
			}
			return viz.NewGrid(ext, w, h)
		}
	}
	return viz.NewGrid(engine.Rect{MaxLon: 1, MaxLat: 1}, w, h)
}

// binomialEstimate simulates a count(*) over n sample rows: the estimated
// selectivity is Binomial(n, sel)/n, drawn deterministically from rng.
func binomialEstimate(rng *rand.Rand, sel float64, n int) float64 {
	if sel <= 0 {
		return 0
	}
	if sel >= 1 {
		return 1
	}
	// Normal approximation for large n·sel, exact draw otherwise.
	mean := float64(n) * sel
	if mean > 30 && float64(n)*(1-sel) > 30 {
		sd := math.Sqrt(mean * (1 - sel))
		k := mean + rng.NormFloat64()*sd
		if k < 0 {
			k = 0
		}
		if k > float64(n) {
			k = float64(n)
		}
		return k / float64(n)
	}
	k := 0
	for i := 0; i < n; i++ {
		if rng.Float64() < sel {
			k++
		}
	}
	return float64(k) / float64(n)
}

// queryFingerprint hashes query structure for deterministic per-query noise.
func queryFingerprint(q *engine.Query, seed int64) uint64 {
	var h uint64 = 14695981039346656037
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(seed))
	for _, c := range q.Table {
		mix(uint64(c))
	}
	for _, p := range q.Preds {
		mix(uint64(p.Kind) + 3)
		mix(uint64(p.Word) + 5)
		mix(uint64(int64(p.Lo*100)) + 7)
		mix(uint64(int64(p.Hi*100)) + 11)
		mix(uint64(int64(p.Box.MinLon*1000)) + 13)
		mix(uint64(int64(p.Box.MinLat*1000)) + 17)
		mix(uint64(int64(p.Box.MaxLon*1000)) + 19)
		mix(uint64(int64(p.Box.MaxLat*1000)) + 23)
	}
	if q.Join != nil {
		for _, c := range q.Join.Table {
			mix(uint64(c) + 29)
		}
	}
	return h
}
