package core

import (
	"testing"
	"time"

	"github.com/maliva/maliva/internal/engine"
)

// countRules tallies enumerated options per approximation kind.
func countRules(opts []Option) map[ApproxKind]int {
	n := make(map[ApproxKind]int)
	for _, o := range opts {
		n[o.Approx.Kind]++
	}
	return n
}

// TestApproxTierEligibility: the tier's sketch rules enter Ω only for query
// shapes the summaries can answer, and sampling rules only on the
// single-table path — ineligible rules vanish from the space instead of
// surfacing as runtime errors.
func TestApproxTierEligibility(t *testing.T) {
	db, q := smallDB(t, 2_000)
	tb := db.Table("docs")

	// Geo predicate present, no sketch built: sampling rules only.
	opts := EnumerateOptions(db, q, ApproxTierSpec())
	n := countRules(opts)
	if n[ApproxNone] != 8 || n[ApproxRowSample] != 3 || n[ApproxReservoir] != 1 {
		t.Fatalf("geo query space wrong: %v", n)
	}
	if n[ApproxCMS] != 0 || n[ApproxHLL] != 0 {
		t.Fatalf("sketch rules entered Ω without a sketch: %v", n)
	}

	if _, err := tb.BuildSketch("text", "ts", time.Second); err != nil {
		t.Fatal(err)
	}
	// Still geo-shaped: sketch rules stay out.
	if n := countRules(EnumerateOptions(db, q, ApproxTierSpec())); n[ApproxCMS] != 0 || n[ApproxHLL] != 0 {
		t.Fatalf("sketch rules accepted a geo predicate: %v", n)
	}

	// Keyword + time window: CMS in, HLL out (it takes no keyword).
	kw := &engine.Query{Table: "docs", Preds: []engine.Predicate{
		{Col: "text", Kind: engine.PredKeyword, Word: 3},
		{Col: "ts", Kind: engine.PredRange, Lo: 100, Hi: 700},
	}}
	n = countRules(EnumerateOptions(db, kw, ApproxTierSpec()))
	if n[ApproxCMS] != 1 || n[ApproxHLL] != 0 {
		t.Fatalf("keyword+window space wrong: %v", n)
	}

	// Time window only: HLL in, CMS out (it needs a keyword).
	win := &engine.Query{Table: "docs", Preds: []engine.Predicate{
		{Col: "ts", Kind: engine.PredRange, Lo: 100, Hi: 700},
	}}
	n = countRules(EnumerateOptions(db, win, ApproxTierSpec()))
	if n[ApproxCMS] != 0 || n[ApproxHLL] != 1 {
		t.Fatalf("window-only space wrong: %v", n)
	}

	// A join removes the whole tier (engine defines no sampled joins).
	jq := kw.Clone()
	jq.Join = &engine.JoinClause{Table: "dims", LeftCol: "fk", RightCol: "id"}
	n = countRules(EnumerateOptions(db, jq, ApproxTierSpec()))
	if n[ApproxRowSample] != 0 || n[ApproxReservoir] != 0 || n[ApproxCMS] != 0 || n[ApproxHLL] != 0 {
		t.Fatalf("join query admitted approximate-tier rules: %v", n)
	}

	// A LIMIT blocks the sketch rules (their answer ignores limits) but not
	// row sampling.
	lq := kw.Clone()
	lq.Limit = 10
	n = countRules(EnumerateOptions(db, lq, ApproxTierSpec()))
	if n[ApproxCMS] != 0 || n[ApproxRowSample] != 3 {
		t.Fatalf("limited query space wrong: %v", n)
	}
}

// TestBuildRQApproxTier: the option→engine-spec mapping — rates are
// percent/100, reservoir K is sized from the real-scale cardinality estimate
// like LIMIT rules, and sketch options carry no parameters.
func TestBuildRQApproxTier(t *testing.T) {
	_, q := smallDB(t, 1_000)
	rq, _ := BuildRQ(q, Option{Approx: ApproxRule{Kind: ApproxRowSample, Percent: 4}}, 10_000, 1)
	if rq.Approx.Method != engine.ApproxRows || rq.Approx.Rate != 0.04 {
		t.Fatalf("rows spec = %+v", rq.Approx)
	}
	rq, _ = BuildRQ(q, Option{Approx: ApproxRule{Kind: ApproxReservoir, Percent: 4}}, 10_000, 1)
	if rq.Approx.Method != engine.ApproxReservoir || rq.Approx.K != 400 {
		t.Fatalf("reservoir spec = %+v, want K=400 (4%% of 10k)", rq.Approx)
	}
	// Virtual scale divides the stored-row reservoir like it divides LIMITs.
	rq, _ = BuildRQ(q, Option{Approx: ApproxRule{Kind: ApproxReservoir, Percent: 4}}, 10_000, 100)
	if rq.Approx.K != 4 {
		t.Fatalf("scaled reservoir K = %d, want 4", rq.Approx.K)
	}
	rq, _ = BuildRQ(q, Option{Approx: ApproxRule{Kind: ApproxCMS}}, 10_000, 1)
	if rq.Approx.Method != engine.ApproxSketchCount {
		t.Fatalf("cms spec = %+v", rq.Approx)
	}
	rq, _ = BuildRQ(q, Option{Approx: ApproxRule{Kind: ApproxHLL}}, 10_000, 1)
	if rq.Approx.Method != engine.ApproxSketchDistinct {
		t.Fatalf("hll spec = %+v", rq.Approx)
	}
	// Exact options leave the approx clause zero.
	rq, _ = BuildRQ(q, Option{Mask: 1, HasHint: true}, 10_000, 1)
	if rq.Approx.Method != engine.ApproxOff {
		t.Fatalf("hint option set approx spec %+v", rq.Approx)
	}
}

// TestContextBuildApproxTier: a context built over the tier grades every
// option — exact options at quality 1, sketch aggregates by relative
// aggregate error — and the sketch options cost far less virtual time than
// the baseline.
func TestContextBuildApproxTier(t *testing.T) {
	db, _ := smallDB(t, 2_000)
	// 10ms buckets: fine-grained relative to the query window, so the
	// bucket-cover overestimate stays small.
	if _, err := db.Table("docs").BuildSketch("text", "ts", 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	q := &engine.Query{Table: "docs", OutputCols: []string{"loc"}, Preds: []engine.Predicate{
		{Col: "text", Kind: engine.PredKeyword, Word: 3, WordText: "w3"},
		{Col: "ts", Kind: engine.PredRange, Lo: 100, Hi: 700},
	}}
	ctx, err := BuildContext(db, q, DefaultContextConfig(ApproxTierSpec()))
	if err != nil {
		t.Fatal(err)
	}
	sawCMS := false
	for i, o := range ctx.Options {
		if ctx.Quality[i] < 0 || ctx.Quality[i] > 1 {
			t.Fatalf("option %s quality %v out of [0,1]", o.Label(len(q.Preds)), ctx.Quality[i])
		}
		if !o.IsApprox() && ctx.Quality[i] != 1 {
			t.Errorf("exact option %s quality %v, want 1", o.Label(len(q.Preds)), ctx.Quality[i])
		}
		if o.Approx.Kind == ApproxCMS {
			sawCMS = true
			if ctx.Quality[i] <= 0.5 {
				t.Errorf("CMS quality %v implausibly low (ε·N bound should keep it near 1)", ctx.Quality[i])
			}
			// The probe's marginal cost is a few index-entry touches; on
			// this small fixture the fixed StartupMs floor dominates, so
			// "cheap" means well under the baseline, not a fixed ratio.
			if ctx.TrueMs[i] >= ctx.BaselineMs/2 {
				t.Errorf("CMS option costs %.4f ms, baseline %.4f — not a cheap action", ctx.TrueMs[i], ctx.BaselineMs)
			}
		}
	}
	if !sawCMS {
		t.Fatal("tier context missing the CMS option")
	}
}

// qualityOracleCtx builds a synthetic four-option context: two exact, two
// approximate with distinct qualities and times.
func qualityOracleCtx() *QueryContext {
	return &QueryContext{
		Options: []Option{
			{Mask: 1, HasHint: true},
			{Mask: 2, HasHint: true},
			{Approx: ApproxRule{Kind: ApproxRowSample, Percent: 20}},
			{Approx: ApproxRule{Kind: ApproxCMS}},
		},
		TrueMs:  []float64{50, 30, 10, 2},
		Quality: []float64{1, 1, 0.9, 0.8},
	}
}

// TestQualityOracle: exact-first within budget, then highest-quality
// feasible approximation, then fastest overall — the upper bound the
// approximate tier's drills measure policies against.
func TestQualityOracle(t *testing.T) {
	ctx := qualityOracleCtx()
	for _, tc := range []struct {
		budget  float64
		pick    int
		viable  bool
		quality float64
	}{
		{40, 1, true, 1},   // exact B fits: approximations ignored
		{20, 2, true, 0.9}, // no exact fits: best-quality feasible approx
		{5, 3, true, 0.8},  // only the sketch fits
		{1, 3, false, 0.8}, // nothing fits: fastest overall, not viable
		{100, 1, true, 1},  // plenty of budget: still the fastest exact
	} {
		out := QualityOracle{}.Rewrite(ctx, tc.budget)
		if out.Option != tc.pick || out.Viable != tc.viable || out.Quality != tc.quality {
			t.Errorf("budget %v: got option %d viable %v quality %v, want %d %v %v",
				tc.budget, out.Option, out.Viable, out.Quality, tc.pick, tc.viable, tc.quality)
		}
		if out.PlanMs != 0 {
			t.Errorf("budget %v: oracle charged %v planning ms", tc.budget, out.PlanMs)
		}
	}
	// Equal quality breaks toward the faster option.
	ctx.Quality[3] = 0.9
	if out := (QualityOracle{}).Rewrite(ctx, 20); out.Option != 3 {
		t.Errorf("quality tie at budget 20 picked option %d, want the faster 3", out.Option)
	}
}

// TestAggQuality: the relative-error → [0,1] mapping, including the
// zero-truth guard.
func TestAggQuality(t *testing.T) {
	for _, tc := range []struct{ est, truth, want float64 }{
		{100, 100, 1},
		{110, 100, 0.9},
		{300, 100, 0}, // clamped
		{0, 0, 1},     // zero truth, zero estimate
		{2, 0, 0},     // zero truth, wrong estimate (denominator floor 1)
	} {
		if got := aggQuality(tc.est, tc.truth); got != tc.want {
			t.Errorf("aggQuality(%v, %v) = %v, want %v", tc.est, tc.truth, got, tc.want)
		}
	}
}
