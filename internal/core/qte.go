package core

// SelCache tracks which predicate selectivities have already been collected
// while planning one query. Collecting a selectivity for one rewritten query
// makes estimating later rewritten queries cheaper — the cost-update dynamic
// of the paper's Fig. 7.
type SelCache struct {
	have map[int]bool
}

// NewSelCache returns an empty cache.
func NewSelCache() *SelCache { return &SelCache{have: make(map[int]bool)} }

// Has reports whether predicate position p's selectivity was collected.
func (c *SelCache) Has(p int) bool { return c.have[p] }

// Add marks predicate position p's selectivity as collected.
func (c *SelCache) Add(p int) { c.have[p] = true }

// Missing returns how many of the given positions are not yet cached.
func (c *SelCache) Missing(positions []int) int {
	n := 0
	for _, p := range positions {
		if !c.have[p] {
			n++
		}
	}
	return n
}

// Len returns the number of cached selectivities.
func (c *SelCache) Len() int { return len(c.have) }

// Estimator is a Query Time Estimator (QTE, §4.2): it predicts the execution
// time of a rewritten query, at a non-negligible planning cost. The MDP
// environment charges the cost against the time budget and feeds the
// estimate into the agent's state.
type Estimator interface {
	// Name identifies the estimator in reports.
	Name() string
	// InitialCost returns the rough, history-based cost estimate for
	// estimating option i before any planning starts (the C_i initial
	// values in the MDP state; they need not be accurate).
	InitialCost(ctx *QueryContext, i int) float64
	// CostNow returns the exact cost of estimating option i given the
	// selectivities already collected in cache.
	CostNow(ctx *QueryContext, i int, cache *SelCache) float64
	// Estimate performs the estimation for option i: it returns the
	// estimated execution time and the actual cost paid, and records newly
	// collected selectivities in cache.
	Estimate(ctx *QueryContext, i int, cache *SelCache) (estMs, costMs float64)
}
