package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RunIndexed executes fn(0..n-1) on a bounded worker pool. workers ≤ 0 uses
// GOMAXPROCS; workers == 1 (or n == 1) runs inline with zero goroutine
// overhead. fn must only write state owned by its index — under that
// contract the results are identical at any worker count. When several
// calls fail, the error of the lowest index is returned, so error reporting
// is deterministic too.
func RunIndexed(n, workers int, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		errs = make([]error, n)
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runIndexed is the package-internal spelling used by BuildContext.
func runIndexed(n, workers int, fn func(int) error) error {
	return RunIndexed(n, workers, fn)
}
