package core

import (
	"math"
	"testing"

	"github.com/maliva/maliva/internal/engine"
)

// stubQTE is a deterministic estimator for environment tests: estimates come
// from a fixed table (falling back to the true time), and each uncached
// selectivity costs UnitMs.
type stubQTE struct {
	UnitMs float64
	BaseMs float64
	Est    map[int]float64 // option → estimate override
}

func (s *stubQTE) Name() string { return "stub" }

func (s *stubQTE) InitialCost(ctx *QueryContext, i int) float64 {
	return s.BaseMs + s.UnitMs*float64(len(ctx.NeedSels[i]))
}

func (s *stubQTE) CostNow(ctx *QueryContext, i int, cache *SelCache) float64 {
	return s.BaseMs + s.UnitMs*float64(cache.Missing(ctx.NeedSels[i]))
}

func (s *stubQTE) Estimate(ctx *QueryContext, i int, cache *SelCache) (float64, float64) {
	cost := s.CostNow(ctx, i, cache)
	for _, p := range ctx.NeedSels[i] {
		cache.Add(p)
	}
	if est, ok := s.Est[i]; ok {
		return est, cost
	}
	return ctx.TrueMs[i], cost
}

// synthContext builds a context with n exact options; option i needs the
// selectivities listed in needSels[i].
func synthContext(times []float64, needSels [][]int) *QueryContext {
	n := len(times)
	ctx := &QueryContext{
		Query:          &engine.Query{Table: "synthetic", Preds: make([]engine.Predicate, 4)},
		TrueMs:         times,
		Quality:        make([]float64, n),
		NeedSels:       needSels,
		BaselineOption: -1,
		BaselineMs:     times[0],
		Fingerprint:    12345,
		Scale:          1,
	}
	for i := 0; i < n; i++ {
		ctx.Options = append(ctx.Options, Option{Mask: uint32(i), HasHint: true})
		ctx.Quality[i] = 1
		ctx.PlanEst = append(ctx.PlanEst, engine.PlanEstimate{EstMs: times[i]})
	}
	return ctx
}

func TestEnvViableTermination(t *testing.T) {
	ctx := synthContext(
		[]float64{900, 200, 800},
		[][]int{{0}, {1}, {0, 1}},
	)
	qte := &stubQTE{UnitMs: 50, BaseMs: 10}
	env := NewEnv(EnvConfig{Budget: 500, QTE: qte, Beta: 1}, ctx)

	// Explore option 1 (est 200, cost 60): 60 + 200 ≤ 500 → terminal.
	r, done := env.Step(1)
	if !done {
		t.Fatal("expected termination on viable estimate")
	}
	if env.Decided() != 1 {
		t.Errorf("Decided = %d", env.Decided())
	}
	wantReward := (500.0 - 60 - 200) / 500
	if math.Abs(r-wantReward) > 1e-9 {
		t.Errorf("reward = %v, want %v (Eq. 1)", r, wantReward)
	}
	out := env.Outcome()
	if !out.Viable || out.PlanMs != 60 || out.ExecMs != 200 || out.TotalMs != 260 || out.Explored != 1 {
		t.Errorf("outcome = %+v", out)
	}
}

func TestEnvCostSharingAcrossOptions(t *testing.T) {
	ctx := synthContext(
		[]float64{900, 900, 900},
		[][]int{{0}, {0, 1}, {1}},
	)
	qte := &stubQTE{UnitMs: 100, BaseMs: 0}
	env := NewEnv(EnvConfig{Budget: 10000, QTE: qte, Beta: 1}, ctx)

	s := env.State()
	// Initial costs: 100, 200, 100 normalized by τ.
	if math.Abs(s[1]-100.0/10000) > 1e-12 || math.Abs(s[2]-200.0/10000) > 1e-12 {
		t.Fatalf("initial state costs wrong: %v", s[1:4])
	}
	// Exploring option 0 caches selectivity 0 → option 1's cost drops to 100.
	env.Step(0)
	s = env.State()
	if got := s[2] * 10000; got != 100 {
		t.Errorf("option 1 cost after sharing = %v, want 100 (Fig. 7 update)", got)
	}
	if got := s[3] * 10000; got != 100 {
		t.Errorf("option 2 cost should be unchanged at 100, got %v", got)
	}
	// Elapsed is recorded.
	if got := s[0] * 10000; got != 100 {
		t.Errorf("elapsed = %v, want 100", got)
	}
	// Estimated time of option 0 appears in the T section.
	if got := s[1+3+0] * 10000; got != 900 {
		t.Errorf("T₀ = %v, want 900", got)
	}
}

func TestEnvExhaustionPicksBestEstimate(t *testing.T) {
	ctx := synthContext(
		[]float64{900, 700, 800},
		[][]int{{0}, {1}, {2}},
	)
	qte := &stubQTE{UnitMs: 10, BaseMs: 0}
	env := NewEnv(EnvConfig{Budget: 500, QTE: qte, Beta: 1}, ctx)
	var done bool
	var r float64
	for _, a := range []int{0, 2, 1} {
		r, done = env.Step(a)
		if done && a != 1 {
			t.Fatalf("terminated early at option %d", a)
		}
	}
	if !done {
		t.Fatal("expected termination on exhaustion")
	}
	// All estimates exceed the remaining budget; the best estimated (700,
	// option 1) is chosen and the reward is negative (penalty).
	if env.Decided() != 1 {
		t.Errorf("Decided = %d, want 1", env.Decided())
	}
	if r >= 0 {
		t.Errorf("reward = %v, want penalty", r)
	}
	out := env.Outcome()
	if out.Viable || out.Explored != 3 {
		t.Errorf("outcome = %+v", out)
	}
}

func TestEnvOutOfTimeTermination(t *testing.T) {
	ctx := synthContext(
		[]float64{900, 950, 980},
		[][]int{{0, 1, 2}, {0, 1, 3}, {1, 2, 3}},
	)
	qte := &stubQTE{UnitMs: 300, BaseMs: 0}
	env := NewEnv(EnvConfig{Budget: 500, QTE: qte, Beta: 1}, ctx)
	_, done := env.Step(0) // costs 900 > 500 → out of time immediately
	if !done {
		t.Fatal("expected out-of-time termination")
	}
	if env.Decided() != 0 {
		t.Errorf("Decided = %d (only explored option)", env.Decided())
	}
}

func TestEnvQualityAwareReward(t *testing.T) {
	ctx := synthContext([]float64{100}, [][]int{{0}})
	ctx.Quality[0] = 0.5
	qte := &stubQTE{UnitMs: 0, BaseMs: 50}
	beta := 0.6
	env := NewEnv(EnvConfig{Budget: 500, QTE: qte, Beta: beta}, ctx)
	r, done := env.Step(0)
	if !done {
		t.Fatal("expected termination")
	}
	eff := (500.0 - 50 - 100) / 500
	want := beta*eff + (1-beta)*0.5
	if math.Abs(r-want) > 1e-9 {
		t.Errorf("Eq. 2 reward = %v, want %v", r, want)
	}
}

func TestEnvStartElapsed(t *testing.T) {
	ctx := synthContext([]float64{100, 100}, [][]int{{0}, {1}})
	qte := &stubQTE{UnitMs: 10, BaseMs: 0}
	env := NewEnv(EnvConfig{Budget: 500, QTE: qte, Beta: 1, StartElapsed: 450}, ctx)
	if env.Elapsed() != 450 {
		t.Fatalf("Elapsed = %v", env.Elapsed())
	}
	_, done := env.Step(0) // 450+10 elapsed, est 100 → 560 > 500, elapsed 460 < 500, 1 remains
	if done {
		t.Fatal("should not terminate: time remains and options remain")
	}
	_, done = env.Step(1)
	if !done {
		t.Fatal("exhaustion should terminate")
	}
}

func TestEnvStepPanics(t *testing.T) {
	ctx := synthContext([]float64{100}, [][]int{{0}})
	env := NewEnv(EnvConfig{Budget: 500, QTE: &stubQTE{}, Beta: 1}, ctx)
	env.Step(0)
	for _, f := range []func(){
		func() { env.Step(0) }, // finished episode
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestEnvInitialCostJitterDeterministic(t *testing.T) {
	ctx := synthContext([]float64{100, 100}, [][]int{{0}, {1}})
	cfg := EnvConfig{Budget: 500, QTE: &stubQTE{UnitMs: 100}, Beta: 1, InitialCostJitter: 0.25}
	e1 := NewEnv(cfg, ctx)
	e2 := NewEnv(cfg, ctx)
	s1, s2 := e1.State(), e2.State()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("jitter not deterministic")
		}
	}
	// Jitter stays within ±25%.
	base := 100.0 / 500
	for _, v := range s1[1:3] {
		if v < base*0.74 || v > base*1.26 {
			t.Errorf("jittered cost %v outside ±25%% of %v", v, base)
		}
	}
}

func TestSelCache(t *testing.T) {
	c := NewSelCache()
	if c.Missing([]int{0, 1, 2}) != 3 || c.Len() != 0 {
		t.Fatal("fresh cache wrong")
	}
	c.Add(1)
	if !c.Has(1) || c.Has(0) || c.Missing([]int{0, 1, 2}) != 2 || c.Len() != 1 {
		t.Fatal("cache after Add wrong")
	}
	c.Add(1)
	if c.Len() != 1 {
		t.Fatal("Add not idempotent")
	}
}

func TestStateDim(t *testing.T) {
	if StateDim(8) != 17 || StateDim(21) != 43 {
		t.Errorf("StateDim wrong: %d %d", StateDim(8), StateDim(21))
	}
}
