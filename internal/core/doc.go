// Package core implements Maliva's contribution: MDP-based query rewriting
// under a time constraint. It defines rewriting options (query-hint sets
// and approximation rules, Def. 2.1/2.2 in the paper), the per-query
// context that captures ground truth for training, the MDP model (states,
// actions, transitions, rewards — §4), the deep-Q agent (Algorithm 1/2 —
// §5), and the quality-aware one-stage/two-stage rewriters (§6).
//
// # Layout
//
//   - option.go — the rewriting-option space Ω (hint sets × approximation
//     rules) and BuildRQ, which turns an option into a rewritten query.
//   - context.go — QueryContext: one workload query's ground truth (every
//     option executed once). BuildContext is the expensive step; it fans
//     out per option (ContextConfig.Parallel) and shares index scans
//     through an engine.LookupCache (ContextConfig.Lookups).
//   - env.go, agent.go — the MDP environment and the deep-Q Agent, with
//     JSON snapshots (SaveAgentFile / LoadAgentFile) interchangeable
//     between cmd/maliva-train and maliva-server -save-agent.
//   - rewriter.go, quality.go, qte.go — the Rewriter interface and its
//     implementations (Baseline, Naive, MDP, Oracle, quality-aware
//     one/two-stage), plus query-time-estimator plumbing.
//   - replay.go — deterministic replay of recorded decisions.
//   - parallel.go — RunIndexed, the bounded worker pool the harness,
//     gateway warmup, and cluster warmup all share.
//
// # Invariants
//
// A Rewriter's outcome is a deterministic function of (context, budget):
// rewriters may keep scratch state (the MDP agent reuses forward-pass
// buffers — not concurrency-safe, callers serialize), but never
// decision-relevant state. The serving layer's plan cache and the
// cluster's shared rewriters both lean on that determinism.
package core
