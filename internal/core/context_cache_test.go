package core

import (
	"reflect"
	"testing"

	"github.com/maliva/maliva/internal/engine"
)

// TestBuildContextSharedLookupCache: routing context construction through a
// caller-owned LookupCache (the server-scope hoist) yields ground truth
// bit-identical to the default per-context cache, both cold and warm, and
// the shared cache actually accumulates entries across contexts.
func TestBuildContextSharedLookupCache(t *testing.T) {
	db, q := smallDB(t, 2000)
	cfg := DefaultContextConfig(HintOnlySpec())

	fresh, err := BuildContext(db, q, cfg)
	if err != nil {
		t.Fatal(err)
	}

	shared := engine.NewLookupCache()
	sharedCfg := cfg
	sharedCfg.Lookups = shared

	// Cold shared-cache build.
	cold, err := BuildContext(db, q, sharedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Len() == 0 {
		t.Fatal("shared cache stayed empty")
	}
	lenAfterCold := shared.Len()

	// Warm build: every lookup served from the shared cache.
	warm, err := BuildContext(db, q, sharedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Len() != lenAfterCold {
		t.Errorf("warm build grew the cache: %d -> %d", lenAfterCold, shared.Len())
	}

	for name, got := range map[string]*QueryContext{"cold": cold, "warm": warm} {
		if !reflect.DeepEqual(got.TrueMs, fresh.TrueMs) {
			t.Errorf("%s: TrueMs diverges\n got %v\nwant %v", name, got.TrueMs, fresh.TrueMs)
		}
		if !reflect.DeepEqual(got.Quality, fresh.Quality) {
			t.Errorf("%s: Quality diverges", name)
		}
		if !reflect.DeepEqual(got.SelTrue, fresh.SelTrue) {
			t.Errorf("%s: SelTrue diverges", name)
		}
		if !reflect.DeepEqual(got.SelSampled, fresh.SelSampled) {
			t.Errorf("%s: SelSampled diverges", name)
		}
		if !reflect.DeepEqual(got.PlanEst, fresh.PlanEst) {
			t.Errorf("%s: PlanEst diverges", name)
		}
		if got.BaselineMs != fresh.BaselineMs || got.BaselineOption != fresh.BaselineOption {
			t.Errorf("%s: baseline diverges", name)
		}
	}
}
