package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReplayFIFOEviction(t *testing.T) {
	r := NewReplay(3)
	for i := 0; i < 5; i++ {
		r.Add(Experience{Action: i})
	}
	if r.Len() != 3 || r.Cap() != 3 {
		t.Fatalf("Len=%d Cap=%d", r.Len(), r.Cap())
	}
	// Oldest (actions 0, 1) must be gone.
	seen := map[int]bool{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		for _, e := range r.Sample(rng, 3) {
			seen[e.Action] = true
		}
	}
	if seen[0] || seen[1] {
		t.Error("evicted experiences still sampled")
	}
	for a := 2; a <= 4; a++ {
		if !seen[a] {
			t.Errorf("action %d never sampled", a)
		}
	}
}

func TestReplaySampleEmpty(t *testing.T) {
	r := NewReplay(4)
	if got := r.Sample(rand.New(rand.NewSource(1)), 2); got != nil {
		t.Errorf("sample of empty replay = %v", got)
	}
}

// TestReplayLenNeverExceedsCap is a property over random add/sample traces.
func TestReplayLenNeverExceedsCap(t *testing.T) {
	prop := func(capRaw uint8, adds uint8) bool {
		c := int(capRaw)%20 + 1
		r := NewReplay(c)
		for i := 0; i < int(adds); i++ {
			r.Add(Experience{Action: i})
			if r.Len() > c {
				return false
			}
		}
		want := int(adds)
		if want > c {
			want = c
		}
		return r.Len() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayZeroCapacityClamped(t *testing.T) {
	r := NewReplay(0)
	r.Add(Experience{Action: 9})
	if r.Len() != 1 || r.Cap() != 1 {
		t.Errorf("Len=%d Cap=%d", r.Len(), r.Cap())
	}
}
