package core

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// learnableWorkload builds contexts where one option is reliably viable and
// cheap to identify: option `good` has true time 100 ms, the others 2000 ms.
// Workloads alternate which option is good based on a detectable pattern in
// estimated times, so a trained agent should beat random exploration.
func learnableWorkload(n int) []*QueryContext {
	rng := rand.New(rand.NewSource(77))
	var out []*QueryContext
	for i := 0; i < n; i++ {
		good := i % 3 // rotate the good option among 0..2
		times := []float64{2000, 2000, 2000, 2000}
		times[good] = 100
		// Option 3 is always mediocre but never viable within 500.
		times[3] = 900
		needs := [][]int{{0}, {1}, {2}, {0, 1, 2}}
		ctx := synthContext(times, needs)
		ctx.Fingerprint = uint64(rng.Int63())
		out = append(out, ctx)
	}
	return out
}

func fastAgentConfig() AgentConfig {
	cfg := DefaultAgentConfig()
	cfg.MaxEpochs = 8
	cfg.MinEpochs = 2
	cfg.EpsDecayEpisodes = 150
	return cfg
}

func TestAgentLearnsViableOptions(t *testing.T) {
	contexts := learnableWorkload(60)
	qte := &stubQTE{UnitMs: 40, BaseMs: 5}
	envCfg := EnvConfig{Budget: 500, QTE: qte, Beta: 1}
	agent := NewAgent(fastAgentConfig(), 4)
	res := agent.Train(contexts, envCfg)
	if res.Epochs == 0 || res.Episodes == 0 {
		t.Fatalf("training did not run: %+v", res)
	}
	viable := 0
	for _, ctx := range contexts {
		env := NewEnv(envCfg, ctx)
		out := agent.Rewrite(env)
		if out.Viable {
			viable++
		}
	}
	vqp := float64(viable) / float64(len(contexts))
	// With exploration costs 45–125 ms and a 100 ms good option, a sensible
	// policy reaches near-100%; random order still often succeeds, so we
	// require a high bar.
	if vqp < 0.8 {
		t.Errorf("trained agent VQP = %.2f, want ≥ 0.8", vqp)
	}
}

func TestAgentGreedyMasksExplored(t *testing.T) {
	agent := NewAgent(fastAgentConfig(), 4)
	state := make([]float64, StateDim(4))
	explored := []bool{true, false, true, false}
	for i := 0; i < 10; i++ {
		a := agent.Greedy(state, explored)
		if a != 1 && a != 3 {
			t.Fatalf("Greedy returned explored option %d", a)
		}
	}
	if a := agent.Greedy(state, []bool{true, true, true, true}); a != -1 {
		t.Errorf("Greedy with all explored = %d, want -1", a)
	}
}

func TestAgentSerializationRoundTrip(t *testing.T) {
	contexts := learnableWorkload(20)
	qte := &stubQTE{UnitMs: 40, BaseMs: 5}
	envCfg := EnvConfig{Budget: 500, QTE: qte, Beta: 1}
	agent := NewAgent(fastAgentConfig(), 4)
	agent.Train(contexts[:10], envCfg)

	data, err := json.Marshal(agent)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadAgent(data, fastAgentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumOpts != 4 {
		t.Fatalf("NumOpts = %d", back.NumOpts)
	}
	// Same decisions on every context.
	for _, ctx := range contexts {
		a := agent.Rewrite(NewEnv(envCfg, ctx))
		b := back.Rewrite(NewEnv(envCfg, ctx))
		if a.Option != b.Option {
			t.Fatalf("decisions differ after round trip: %d vs %d", a.Option, b.Option)
		}
	}
}

// TestLoadAgentFile: the file helper round-trips a trained policy (the
// cmd/maliva-train → maliva-load -agent handoff) and reports missing or
// malformed files as errors.
func TestLoadAgentFile(t *testing.T) {
	contexts := learnableWorkload(20)
	qte := &stubQTE{UnitMs: 40, BaseMs: 5}
	envCfg := EnvConfig{Budget: 500, QTE: qte, Beta: 1}
	agent := NewAgent(fastAgentConfig(), 4)
	agent.Train(contexts[:10], envCfg)

	data, err := json.Marshal(agent)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "agent.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := LoadAgentFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, ctx := range contexts {
		a := agent.Rewrite(NewEnv(envCfg, ctx))
		b := back.Rewrite(NewEnv(envCfg, ctx))
		if a.Option != b.Option {
			t.Fatalf("decisions differ after file round trip: %d vs %d", a.Option, b.Option)
		}
	}

	if _, err := LoadAgentFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("expected error for missing file")
	}

	// SaveAgentFile writes the same format (the maliva-server -save-agent
	// persist-after-train path): decisions survive a save/load round trip.
	saved := filepath.Join(t.TempDir(), "saved.json")
	if err := SaveAgentFile(saved, agent); err != nil {
		t.Fatal(err)
	}
	fromSave, err := LoadAgentFile(saved)
	if err != nil {
		t.Fatal(err)
	}
	for _, ctx := range contexts {
		a := agent.Rewrite(NewEnv(envCfg, ctx))
		b := fromSave.Rewrite(NewEnv(envCfg, ctx))
		if a.Option != b.Option {
			t.Fatalf("decisions differ after SaveAgentFile round trip: %d vs %d", a.Option, b.Option)
		}
	}
	if err := SaveAgentFile(filepath.Join(t.TempDir(), "no-such-dir", "x.json"), agent); err == nil {
		t.Error("expected error for unwritable path")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAgentFile(bad); err == nil {
		t.Error("expected error for malformed snapshot")
	}
}

func TestLoadAgentRejectsGarbage(t *testing.T) {
	if _, err := LoadAgent([]byte("{"), fastAgentConfig()); err == nil {
		t.Error("expected error for malformed JSON")
	}
	if _, err := LoadAgent([]byte(`{"num_opts":2,"net":"zzz"}`), fastAgentConfig()); err == nil {
		t.Error("expected error for malformed network")
	}
}

func TestEpsilonDecays(t *testing.T) {
	agent := NewAgent(fastAgentConfig(), 4)
	e0 := agent.epsilon()
	agent.episodes = 10000
	e1 := agent.epsilon()
	if e0 <= e1 {
		t.Errorf("epsilon should decay: %v → %v", e0, e1)
	}
	if e1 < agent.Cfg.EpsEnd-1e-9 {
		t.Errorf("epsilon %v fell below floor %v", e1, agent.Cfg.EpsEnd)
	}
}

func TestTrainConvergenceStopsEarly(t *testing.T) {
	contexts := learnableWorkload(10)
	qte := &stubQTE{UnitMs: 40, BaseMs: 5}
	cfg := fastAgentConfig()
	cfg.MaxEpochs = 50
	cfg.ConvergeDelta = 1.0 // any non-improvement stops immediately
	agent := NewAgent(cfg, 4)
	res := agent.Train(contexts, EnvConfig{Budget: 500, QTE: qte, Beta: 1})
	if res.Epochs >= 50 {
		t.Errorf("expected early convergence, ran %d epochs", res.Epochs)
	}
}
