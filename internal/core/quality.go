package core

// This file implements the §6 quality-aware rewriters. Both use the
// quality-aware MDP model (reward Eq. 2); they differ in how they organize
// the option space:
//
//   - One-stage: a single agent considers query hints and approximation
//     rules simultaneously. Highest chance of finding a viable RQ for
//     0-viable-plan queries, but may pick an approximate RQ even when an
//     exact viable one exists.
//   - Two-stage: run the hint-only agent first; only if it exhausts all
//     exact options without finding a viable RQ (and budget remains) run a
//     quality-aware agent over the approximation options, inheriting the
//     elapsed planning time. Never misses an exact viable RQ the first
//     stage can find, so average quality is higher.

// SubContext returns a context restricted to the options selected by keep
// (indexes into ctx.Options). Ground-truth slices are re-sliced; the query
// and selectivities are shared.
func SubContext(ctx *QueryContext, keep []int) *QueryContext {
	sub := &QueryContext{
		Query:          ctx.Query,
		BaselineMs:     ctx.BaselineMs,
		BaselineOption: -1,
		Fingerprint:    ctx.Fingerprint,
		Scale:          ctx.Scale,
		EstRows:        ctx.EstRows,
		SelTrue:        ctx.SelTrue,
		SelSampled:     ctx.SelSampled,
	}
	for newIdx, i := range keep {
		sub.Options = append(sub.Options, ctx.Options[i])
		sub.TrueMs = append(sub.TrueMs, ctx.TrueMs[i])
		sub.Quality = append(sub.Quality, ctx.Quality[i])
		sub.NeedSels = append(sub.NeedSels, ctx.NeedSels[i])
		sub.PlanEst = append(sub.PlanEst, ctx.PlanEst[i])
		if i == ctx.BaselineOption {
			sub.BaselineOption = newIdx
		}
	}
	return sub
}

// ExactOptionIndexes returns the indexes of exact (hint-only) options.
func ExactOptionIndexes(ctx *QueryContext) []int {
	var out []int
	for i, o := range ctx.Options {
		if !o.IsApprox() {
			out = append(out, i)
		}
	}
	return out
}

// ApproxOptionIndexes returns the indexes of approximation options.
func ApproxOptionIndexes(ctx *QueryContext) []int {
	var out []int
	for i, o := range ctx.Options {
		if o.IsApprox() {
			out = append(out, i)
		}
	}
	return out
}

// OneStageRewriter runs a single quality-aware agent over the full option
// space (hints + approximation rules).
type OneStageRewriter struct {
	Agent *Agent
	QTE   Estimator
	Beta  float64
}

// Name implements Rewriter.
func (r *OneStageRewriter) Name() string { return "1-stage MDP (" + r.QTE.Name() + ")" }

// Rewrite implements Rewriter.
func (r *OneStageRewriter) Rewrite(ctx *QueryContext, budget float64) Outcome {
	env := NewEnv(EnvConfig{Budget: budget, QTE: r.QTE, Beta: r.Beta}, ctx)
	return r.Agent.Rewrite(env)
}

// TwoStageRewriter runs the hint-only agent first, then (only on exhaustion
// with time remaining) the quality-aware agent over approximation options.
type TwoStageRewriter struct {
	// StageOne is trained on the exact sub-space with the Eq. 1 reward.
	StageOne *Agent
	// StageTwo is trained on the approximation sub-space with Eq. 2.
	StageTwo *Agent
	QTE      Estimator
	Beta     float64
}

// Name implements Rewriter.
func (r *TwoStageRewriter) Name() string { return "2-stage MDP (" + r.QTE.Name() + ")" }

// Rewrite implements Rewriter.
func (r *TwoStageRewriter) Rewrite(ctx *QueryContext, budget float64) Outcome {
	exactIdx := ExactOptionIndexes(ctx)
	exactCtx := SubContext(ctx, exactIdx)
	env1 := NewEnv(EnvConfig{Budget: budget, QTE: r.QTE, Beta: 1}, exactCtx)
	out1 := r.StageOne.Rewrite(env1)
	out1.Option = exactIdx[out1.Option]

	// Stage 1 found an estimated-viable exact RQ, or ran out of budget:
	// its decision stands.
	if out1.TotalMs <= budget || out1.PlanMs >= budget {
		return out1
	}
	// Exhausted all exact options without a viable one and budget remains:
	// explore approximation rules, inheriting elapsed planning time.
	approxIdx := ApproxOptionIndexes(ctx)
	if len(approxIdx) == 0 {
		return out1
	}
	approxCtx := SubContext(ctx, approxIdx)
	env2 := NewEnv(EnvConfig{Budget: budget, QTE: r.QTE, Beta: r.Beta}, approxCtx)
	env2.ResetWithElapsed(out1.PlanMs)
	out2 := r.StageTwo.RewriteFrom(env2)
	out2.Option = approxIdx[out2.Option]
	out2.Explored += out1.Explored

	// Keep whichever decision is better: prefer a viable outcome; among
	// non-viable ones prefer the faster total (the agent had to commit to
	// stage 2 once stage 1 failed, so out2 is the decision; but if stage 2
	// is worse than just running stage 1's best exact estimate, a real
	// middleware would fall back).
	if out2.Viable || out2.TotalMs <= out1.TotalMs {
		return out2
	}
	return out1
}
