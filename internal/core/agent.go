package core

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"

	"github.com/maliva/maliva/internal/nn"
)

// AgentConfig holds the deep-Q-learning hyperparameters (§5.1).
type AgentConfig struct {
	// Hidden sizes; nil defaults to two hidden layers sized like the input
	// layer, the paper's Fig. 8 architecture.
	Hidden []int
	// Gamma is the discount factor. Episodes are short and the reward is
	// terminal, so a value near 1 works well.
	Gamma float64
	// LR is the Adam learning rate.
	LR float64
	// BatchSize is the minibatch size per replay update.
	BatchSize int
	// ReplayCap is the replay-memory capacity C.
	ReplayCap int
	// EpsStart/EpsEnd/EpsDecayEpisodes define the ε-greedy schedule:
	// ε decays exponentially from start to end over the given episodes.
	EpsStart, EpsEnd float64
	EpsDecayEpisodes int
	// TargetSyncEvery syncs the target network every k episodes.
	TargetSyncEvery int
	// MaxEpochs bounds training passes over the workload.
	MaxEpochs int
	// MinEpochs forces at least this many passes before convergence checks.
	MinEpochs int
	// ConvergeDelta stops training when the epoch's total reward improves
	// by less than this fraction (paper: 1%).
	ConvergeDelta float64
	// UpdatesPerEpisode is how many minibatch updates run after each query
	// (Algorithm 1 line 21 does one; a few speed up convergence).
	UpdatesPerEpisode int
	// Seed drives all training randomness.
	Seed int64
}

// DefaultAgentConfig returns hyperparameters that train in seconds on the
// repo's workload sizes.
func DefaultAgentConfig() AgentConfig {
	return AgentConfig{
		Gamma:             0.99,
		LR:                1e-3,
		BatchSize:         32,
		ReplayCap:         20000,
		EpsStart:          1.0,
		EpsEnd:            0.05,
		EpsDecayEpisodes:  600,
		TargetSyncEvery:   25,
		MaxEpochs:         30,
		MinEpochs:         4,
		ConvergeDelta:     0.01,
		UpdatesPerEpisode: 4,
		Seed:              7,
	}
}

// Agent is the MDP agent: a Q-network mapping states to per-option Q-values,
// with a target network and replay memory for stable training.
type Agent struct {
	Cfg      AgentConfig
	NumOpts  int
	StateDim int

	net    *nn.MLP
	target *nn.MLP
	adam   *nn.Adam
	replay *Replay
	rng    *rand.Rand

	episodes int
}

// NewAgent creates an agent for an option space of size n.
func NewAgent(cfg AgentConfig, n int) *Agent {
	dim := StateDim(n)
	hidden := cfg.Hidden
	if len(hidden) == 0 {
		hidden = []int{dim, dim}
	}
	sizes := append([]int{dim}, hidden...)
	sizes = append(sizes, n)
	rng := rand.New(rand.NewSource(cfg.Seed))
	a := &Agent{
		Cfg:      cfg,
		NumOpts:  n,
		StateDim: dim,
		net:      nn.NewMLP(sizes, rng),
		replay:   NewReplay(cfg.ReplayCap),
		rng:      rng,
	}
	a.target = a.net.Clone()
	a.adam = nn.NewAdam(cfg.LR)
	return a
}

// epsilon returns the current exploration rate.
func (a *Agent) epsilon() float64 {
	d := float64(a.Cfg.EpsDecayEpisodes)
	if d <= 0 {
		d = 1
	}
	return a.Cfg.EpsEnd + (a.Cfg.EpsStart-a.Cfg.EpsEnd)*math.Exp(-float64(a.episodes)/d)
}

// Greedy returns the unexplored option with the highest Q-value
// (Algorithm 2 line 5).
func (a *Agent) Greedy(state []float64, explored []bool) int {
	q := a.net.Forward(state)
	best, bestQ := -1, math.Inf(-1)
	for i, ex := range explored {
		if ex {
			continue
		}
		if q[i] > bestQ {
			best, bestQ = i, q[i]
		}
	}
	return best
}

// actTrain picks an ε-greedy action over unexplored options.
func (a *Agent) actTrain(state []float64, explored []bool) int {
	if a.rng.Float64() < a.epsilon() {
		var candidates []int
		for i, ex := range explored {
			if !ex {
				candidates = append(candidates, i)
			}
		}
		return candidates[a.rng.Intn(len(candidates))]
	}
	return a.Greedy(state, explored)
}

// RunEpisode plays one training episode on env, storing experiences.
// It returns the episode's terminal reward and outcome.
func (a *Agent) RunEpisode(env *Env) (float64, Outcome) {
	env.Reset()
	var lastReward float64
	for !env.Done() {
		s := env.State()
		act := a.actTrain(s, env.Explored())
		r, _ := env.Step(act)
		exp := Experience{
			State:        s,
			Action:       act,
			NextState:    env.State(),
			Reward:       r,
			Done:         env.Done(),
			NextExplored: append([]bool(nil), env.Explored()...),
		}
		a.replay.Add(exp)
		lastReward = r
	}
	a.episodes++
	for u := 0; u < a.Cfg.UpdatesPerEpisode; u++ {
		a.update()
	}
	if a.Cfg.TargetSyncEvery > 0 && a.episodes%a.Cfg.TargetSyncEvery == 0 {
		if err := a.target.CopyWeightsFrom(a.net); err != nil {
			panic("core: target sync: " + err.Error())
		}
	}
	return lastReward, env.Outcome()
}

// update performs one minibatch Q-learning step: for each sampled
// experience, the target is r (terminal) or r + γ·max over unexplored
// actions of the target network's Q(s′) (Bellman).
func (a *Agent) update() {
	if a.replay.Len() < a.Cfg.BatchSize {
		return
	}
	batch := a.replay.Sample(a.rng, a.Cfg.BatchSize)
	a.net.ZeroGrad()
	grad := make([]float64, a.NumOpts)
	for _, e := range batch {
		y := e.Reward
		if !e.Done {
			tq := a.target.Forward(e.NextState)
			best := math.Inf(-1)
			for i, ex := range e.NextExplored {
				if !ex && tq[i] > best {
					best = tq[i]
				}
			}
			if !math.IsInf(best, -1) {
				y += a.Cfg.Gamma * best
			}
		}
		q := a.net.Forward(e.State)
		for i := range grad {
			grad[i] = 0
		}
		// d/dQ (Q − y)² = 2(Q − y); averaged over the batch.
		grad[e.Action] = 2 * (q[e.Action] - y) / float64(len(batch))
		a.net.Backward(grad)
	}
	a.net.ClipGrad(5.0)
	a.adam.Step(a.net)
}

// TrainResult reports a training run.
type TrainResult struct {
	Epochs        int
	Episodes      int
	RewardByEpoch []float64
}

// Train runs Algorithm 1 over the workload contexts until the total epoch
// reward converges (<ConvergeDelta relative improvement) or MaxEpochs is
// reached. envCfg supplies the budget, QTE and β.
func (a *Agent) Train(contexts []*QueryContext, envCfg EnvConfig) TrainResult {
	res := TrainResult{}
	order := make([]int, len(contexts))
	for i := range order {
		order[i] = i
	}
	prev := math.Inf(-1)
	for epoch := 0; epoch < a.Cfg.MaxEpochs; epoch++ {
		// Shuffle to reduce ordering bias (Algorithm 1 line 4).
		a.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total := 0.0
		for _, qi := range order {
			env := NewEnv(envCfg, contexts[qi])
			r, _ := a.RunEpisode(env)
			total += r
			res.Episodes++
		}
		res.Epochs++
		res.RewardByEpoch = append(res.RewardByEpoch, total)
		if epoch+1 >= a.Cfg.MinEpochs && !math.IsInf(prev, -1) {
			denom := math.Max(math.Abs(prev), 1e-9)
			if (total-prev)/denom < a.Cfg.ConvergeDelta && total >= prev-0.05*denom {
				break
			}
		}
		prev = total
	}
	return res
}

// Rewrite runs Algorithm 2: starting from the initial state, repeatedly
// explore the highest-Q unexplored option until termination, then return
// the outcome.
func (a *Agent) Rewrite(env *Env) Outcome {
	env.Reset()
	return a.rewriteFrom(env)
}

// RewriteFrom continues Algorithm 2 on an environment that has already been
// reset (possibly with inherited elapsed time, for the two-stage rewriter).
func (a *Agent) RewriteFrom(env *Env) Outcome { return a.rewriteFrom(env) }

func (a *Agent) rewriteFrom(env *Env) Outcome {
	for !env.Done() {
		act := a.Greedy(env.State(), env.Explored())
		if act < 0 {
			panic("core: no unexplored options but episode not done")
		}
		env.Step(act)
	}
	return env.Outcome()
}

// agentJSON is the serialized agent.
type agentJSON struct {
	NumOpts int             `json:"num_opts"`
	Net     json.RawMessage `json:"net"`
}

// MarshalJSON saves the policy network and option-space size.
func (a *Agent) MarshalJSON() ([]byte, error) {
	netB, err := json.Marshal(a.net)
	if err != nil {
		return nil, err
	}
	return json.Marshal(agentJSON{NumOpts: a.NumOpts, Net: netB})
}

// SaveAgentFile writes a policy snapshot readable by LoadAgentFile — the
// same JSON format cmd/maliva-train emits, so a snapshot persisted by a
// serving binary after startup training (maliva-server -save-agent) is
// interchangeable with one produced by the offline trainer.
func SaveAgentFile(path string, a *Agent) error {
	data, err := json.MarshalIndent(a, "", " ")
	if err != nil {
		return fmt.Errorf("core: serializing agent snapshot: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("core: writing agent snapshot: %w", err)
	}
	return nil
}

// LoadAgentFile reads a policy snapshot saved by SaveAgentFile or
// cmd/maliva-train (an Agent marshaled to JSON) and restores it with the default hyperparameters
// — the loaded agent is used for inference, so the training knobs are
// irrelevant. Callers that keep training should use LoadAgent directly.
func LoadAgentFile(path string) (*Agent, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: reading agent snapshot: %w", err)
	}
	a, err := LoadAgent(data, DefaultAgentConfig())
	if err != nil {
		return nil, fmt.Errorf("core: parsing agent snapshot %s: %w", path, err)
	}
	return a, nil
}

// LoadAgent restores an agent saved with MarshalJSON, using cfg for any
// further training.
func LoadAgent(data []byte, cfg AgentConfig) (*Agent, error) {
	var in agentJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, err
	}
	a := NewAgent(cfg, in.NumOpts)
	var net nn.MLP
	if err := json.Unmarshal(in.Net, &net); err != nil {
		return nil, err
	}
	a.net = &net
	a.target = net.Clone()
	return a, nil
}
