package core

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/maliva/maliva/internal/engine"
)

// smallDB builds a compact engine database for option/context tests.
func smallDB(t testing.TB, rows int) (*engine.DB, *engine.Query) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	db := engine.NewDB(engine.ProfilePostgres(), 31)
	tb := engine.NewTable("docs", 50)
	const vocab = 30
	texts := make([][]uint32, rows)
	times := make([]int64, rows)
	points := make([]engine.Point, rows)
	fk := make([]int64, rows)
	for i := 0; i < rows; i++ {
		k := rng.Intn(3) + 1
		toks := make([]uint32, 0, k)
		for j := 0; j < k; j++ {
			toks = append(toks, uint32(rng.Intn(vocab))+1)
		}
		texts[i] = engine.SortTokens(toks)
		times[i] = int64(rng.Intn(1000))
		points[i] = engine.Point{Lon: rng.Float64() * 10, Lat: rng.Float64() * 10}
		fk[i] = int64(rng.Intn(rows/20 + 1))
	}
	for _, c := range []*engine.Column{
		{Name: "text", Type: engine.ColText, Texts: texts},
		{Name: "ts", Type: engine.ColTime, Ints: times},
		{Name: "loc", Type: engine.ColPoint, Points: points},
		{Name: "fk", Type: engine.ColInt64, Ints: fk},
	} {
		if err := tb.AddColumn(c); err != nil {
			t.Fatal(err)
		}
	}
	for col, kind := range map[string]engine.IndexKind{
		"text": engine.IndexInverted, "ts": engine.IndexBTree, "loc": engine.IndexRTree,
	} {
		if _, err := tb.BuildIndex(col, kind); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.AddTable(tb); err != nil {
		t.Fatal(err)
	}

	dim := engine.NewTable("dims", 50)
	nd := rows/20 + 1
	ids := make([]int64, nd)
	ws := make([]float64, nd)
	for i := range ids {
		ids[i] = int64(i)
		ws[i] = rng.Float64() * 100
	}
	if err := dim.AddColumn(&engine.Column{Name: "id", Type: engine.ColInt64, Ints: ids}); err != nil {
		t.Fatal(err)
	}
	if err := dim.AddColumn(&engine.Column{Name: "w", Type: engine.ColFloat64, Floats: ws}); err != nil {
		t.Fatal(err)
	}
	if _, err := dim.BuildIndex("id", engine.IndexBTree); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(dim); err != nil {
		t.Fatal(err)
	}

	q := &engine.Query{
		Table:      "docs",
		OutputCols: []string{"loc"},
		Preds: []engine.Predicate{
			{Col: "text", Kind: engine.PredKeyword, Word: 3, WordText: "w3"},
			{Col: "ts", Kind: engine.PredRange, Lo: 100, Hi: 700},
			{Col: "loc", Kind: engine.PredGeo, Box: engine.Rect{MinLon: 1, MinLat: 1, MaxLon: 8, MaxLat: 8}},
		},
	}
	return db, q
}

func TestEnumerateHintOnly(t *testing.T) {
	db, q := smallDB(t, 1000)
	opts := EnumerateOptions(db, q, HintOnlySpec())
	if len(opts) != 8 {
		t.Fatalf("got %d options, want 2^3 = 8", len(opts))
	}
	seen := map[uint32]bool{}
	for _, o := range opts {
		if !o.HasHint || o.IsApprox() {
			t.Errorf("hint-only space produced %+v", o)
		}
		if seen[o.Mask] {
			t.Errorf("duplicate mask %b", o.Mask)
		}
		seen[o.Mask] = true
	}
}

func TestEnumerateJoinSpace(t *testing.T) {
	db, q := smallDB(t, 1000)
	q.Join = &engine.JoinClause{Table: "dims", LeftCol: "fk", RightCol: "id"}
	opts := EnumerateOptions(db, q, JoinSpec())
	if len(opts) != 21 {
		t.Fatalf("got %d options, want 7 × 3 = 21 (§7.5)", len(opts))
	}
	for _, o := range opts {
		if o.Mask == 0 {
			t.Error("join space must exclude the empty index combination")
		}
		if o.Join == engine.JoinAuto {
			t.Error("join space options must force a join method")
		}
	}
}

func TestEnumerateQualityAware(t *testing.T) {
	db, q := smallDB(t, 1000)
	opts := EnumerateOptions(db, q, QualityAwareSpec())
	if len(opts) != 13 {
		t.Fatalf("got %d options, want 8 + 5 = 13 (§7.7)", len(opts))
	}
	approx := 0
	for _, o := range opts {
		if o.IsApprox() {
			approx++
			if o.Approx.Kind != ApproxLimit {
				t.Errorf("expected limit rules, got %v", o.Approx.Kind)
			}
		}
	}
	if approx != 5 {
		t.Errorf("approx options = %d, want 5", approx)
	}
}

func TestEnumerateCrossApprox(t *testing.T) {
	db, q := smallDB(t, 1000)
	spec := SpaceSpec{
		IncludeEmptyHint: true,
		ApproxRules:      []ApproxRule{{Kind: ApproxSample, Percent: 20}},
		CrossApprox:      true,
	}
	opts := EnumerateOptions(db, q, spec)
	// 8 exact + 1 unhinted sample + 7 hinted samples (mask ≠ 0).
	if len(opts) != 16 {
		t.Fatalf("got %d options, want 16", len(opts))
	}
}

func TestEnumerateSkipsUnindexablePreds(t *testing.T) {
	db, q := smallDB(t, 1000)
	// Add a predicate on an unindexed column: it must not enlarge the space.
	q.Preds = append(q.Preds, engine.Predicate{Col: "fk", Kind: engine.PredRange, Lo: 0, Hi: 10})
	opts := EnumerateOptions(db, q, HintOnlySpec())
	if len(opts) != 8 {
		t.Fatalf("got %d options, want 8 (fk has no index)", len(opts))
	}
	for _, o := range opts {
		if o.Mask&(1<<3) != 0 {
			t.Error("mask includes unindexable predicate")
		}
	}
}

func TestBuildRQ(t *testing.T) {
	db, q := smallDB(t, 1000)
	_ = db
	// Hint-only.
	rq, h := BuildRQ(q, Option{Mask: 0b101, HasHint: true}, 1e6, 50)
	if !h.Forced || len(h.UseIndex) != 2 || h.UseIndex[0] != 0 || h.UseIndex[1] != 2 {
		t.Errorf("hint = %+v", h)
	}
	if rq.Limit != 0 || rq.SamplePercent != 0 {
		t.Error("hint-only RQ must not approximate")
	}
	// Limit rule: 4% of 1e6 estimated rows at scale 50 → 800 stored rows.
	rq, _ = BuildRQ(q, Option{Approx: ApproxRule{Kind: ApproxLimit, Percent: 4}}, 1e6, 50)
	if rq.Limit != 800 {
		t.Errorf("Limit = %d, want 800", rq.Limit)
	}
	// Tiny estimates floor at 1.
	rq, _ = BuildRQ(q, Option{Approx: ApproxRule{Kind: ApproxLimit, Percent: 0.0001}}, 100, 50)
	if rq.Limit != 1 {
		t.Errorf("Limit = %d, want 1", rq.Limit)
	}
	// Sample rule.
	rq, _ = BuildRQ(q, Option{Approx: ApproxRule{Kind: ApproxSample, Percent: 20}}, 1e6, 50)
	if rq.SamplePercent != 20 {
		t.Errorf("SamplePercent = %d", rq.SamplePercent)
	}
	// The original query is never mutated.
	if q.Limit != 0 || q.SamplePercent != 0 {
		t.Error("BuildRQ mutated the original query")
	}
}

func TestNeededSels(t *testing.T) {
	_, q := smallDB(t, 100)
	if got := NeededSels(q, Option{Mask: 0b011, HasHint: true}); len(got) != 2 {
		t.Errorf("NeededSels hint = %v", got)
	}
	if got := NeededSels(q, Option{Approx: ApproxRule{Kind: ApproxLimit, Percent: 1}}); len(got) != 3 {
		t.Errorf("NeededSels approx = %v (cardinality needs all)", got)
	}
	if got := NeededSels(q, Option{}); len(got) != 3 {
		t.Errorf("NeededSels unhinted = %v", got)
	}
}

func TestOptionLabel(t *testing.T) {
	cases := []struct {
		o    Option
		want string
	}{
		{Option{Mask: 0b101, HasHint: true}, "idx{0,2}"},
		{Option{HasHint: true}, "idx{}"},
		{Option{}, "auto"},
		{Option{Mask: 1, HasHint: true, Join: engine.HashJoin}, "idx{0}+hash"},
		{Option{Approx: ApproxRule{Kind: ApproxLimit, Percent: 4}}, "auto+limit4%"},
		{Option{Mask: 2, HasHint: true, Approx: ApproxRule{Kind: ApproxSample, Percent: 20}}, "idx{1}+sample20%"},
	}
	for _, tc := range cases {
		if got := tc.o.Label(3); got != tc.want {
			t.Errorf("Label = %q, want %q", got, tc.want)
		}
	}
}

func TestContextBuild(t *testing.T) {
	db, q := smallDB(t, 3000)
	ctx, err := BuildContext(db, q, DefaultContextConfig(HintOnlySpec()))
	if err != nil {
		t.Fatal(err)
	}
	if ctx.N() != 8 {
		t.Fatalf("N = %d", ctx.N())
	}
	for i := range ctx.Options {
		if ctx.TrueMs[i] <= 0 {
			t.Errorf("TrueMs[%d] = %v", i, ctx.TrueMs[i])
		}
		if ctx.Quality[i] != 1 {
			t.Errorf("exact option quality = %v", ctx.Quality[i])
		}
	}
	if ctx.BaselineMs <= 0 {
		t.Error("BaselineMs not set")
	}
	if ctx.BaselineOption < 0 {
		t.Error("baseline plan should match one of the 2^m options")
	}
	for i, s := range ctx.SelTrue {
		if s < 0 || s > 1 {
			t.Errorf("SelTrue[%d] = %v", i, s)
		}
		if ctx.SelSampled[i] < 0 || ctx.SelSampled[i] > 1 {
			t.Errorf("SelSampled[%d] = %v", i, ctx.SelSampled[i])
		}
	}
	if ctx.NReal != 3000*50 {
		t.Errorf("NReal = %v", ctx.NReal)
	}
	// NumViable is monotone in the budget.
	if ctx.NumViable(100) > ctx.NumViable(10000) {
		t.Error("NumViable not monotone")
	}
	if ctx.BestExactMs() <= 0 {
		t.Error("BestExactMs not positive")
	}
}

func TestContextQualityForApproxOptions(t *testing.T) {
	db, q := smallDB(t, 3000)
	ctx, err := BuildContext(db, q, DefaultContextConfig(QualityAwareSpec()))
	if err != nil {
		t.Fatal(err)
	}
	sawLoss := false
	for i, o := range ctx.Options {
		if !o.IsApprox() {
			continue
		}
		if ctx.Quality[i] < 0 || ctx.Quality[i] > 1 {
			t.Errorf("quality[%d] = %v", i, ctx.Quality[i])
		}
		if ctx.Quality[i] < 0.999 {
			sawLoss = true
		}
	}
	if !sawLoss {
		t.Error("expected at least one approx option with quality loss")
	}
}

func TestContextUnknownTable(t *testing.T) {
	db, _ := smallDB(t, 100)
	_, err := BuildContext(db, &engine.Query{Table: "ghost"}, DefaultContextConfig(HintOnlySpec()))
	if err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Errorf("err = %v", err)
	}
}

func TestContextDeterminism(t *testing.T) {
	db, q := smallDB(t, 2000)
	a, err := BuildContext(db, q, DefaultContextConfig(HintOnlySpec()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildContext(db, q, DefaultContextConfig(HintOnlySpec()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.TrueMs {
		if a.TrueMs[i] != b.TrueMs[i] {
			t.Fatalf("TrueMs differ at %d", i)
		}
		if a.SelSampled[i%len(a.SelSampled)] != b.SelSampled[i%len(b.SelSampled)] {
			t.Fatal("SelSampled differ")
		}
	}
}
