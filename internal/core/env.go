package core

import "math"

// EnvConfig parameterizes the MDP environment.
type EnvConfig struct {
	// Budget is the time limit τ in virtual milliseconds.
	Budget float64
	// QTE is the query-time estimator the agent consults.
	QTE Estimator
	// Beta weighs efficiency against quality in the reward (Eq. 2);
	// Beta = 1 reduces to the hint-only reward (Eq. 1).
	Beta float64
	// InitialCostJitter perturbs the initial C_i values by ±fraction,
	// deterministically per (query, option): the paper only requires the
	// initial estimates to be rough. Default 0 (exact).
	InitialCostJitter float64
	// StartElapsed pre-charges planning time at Reset (the two-stage
	// rewriter's second stage inherits the first stage's elapsed time).
	StartElapsed float64
}

// Env is the MDP environment for one query (§4.1): the agent repeatedly
// picks an unexplored rewritten query to estimate; the environment charges
// the estimation cost, updates the state, and terminates per §5.1.
type Env struct {
	Cfg EnvConfig
	Ctx *QueryContext

	elapsed  float64
	costs    []float64 // C_i — current estimation-cost estimates
	estTimes []float64 // T_i — estimated times of explored options (0 = unexplored)
	explored []bool
	remain   int
	cache    *SelCache

	done    bool
	decided int // option chosen at termination (-1 before)
}

// NewEnv creates an environment over a context. Call Reset before use.
func NewEnv(cfg EnvConfig, ctx *QueryContext) *Env {
	e := &Env{Cfg: cfg, Ctx: ctx}
	e.Reset()
	return e
}

// Reset reinitializes the episode with the configured starting elapsed time
// (zero by default).
func (e *Env) Reset() { e.ResetWithElapsed(e.Cfg.StartElapsed) }

// ResetWithElapsed reinitializes the episode with planning time already
// spent (used by the two-stage rewriter, whose second stage inherits the
// first stage's elapsed time).
func (e *Env) ResetWithElapsed(elapsed float64) {
	n := e.Ctx.N()
	e.elapsed = elapsed
	e.costs = make([]float64, n)
	e.estTimes = make([]float64, n)
	e.explored = make([]bool, n)
	e.remain = n
	e.cache = NewSelCache()
	e.done = false
	e.decided = -1
	for i := 0; i < n; i++ {
		c := e.Cfg.QTE.InitialCost(e.Ctx, i)
		if j := e.Cfg.InitialCostJitter; j > 0 {
			// Deterministic jitter in [−j, +j] from the query fingerprint.
			u := float64(mixFingerprint(e.Ctx.Fingerprint, uint64(i))%10000) / 10000
			c *= 1 + j*(2*u-1)
		}
		e.costs[i] = c
	}
}

// mixFingerprint derives a per-option stream from the query fingerprint.
func mixFingerprint(fp, i uint64) uint64 {
	x := fp ^ (i+1)*0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// N returns the action-space size.
func (e *Env) N() int { return e.Ctx.N() }

// Done reports whether the episode has terminated.
func (e *Env) Done() bool { return e.done }

// Decided returns the option chosen at termination (-1 before termination).
func (e *Env) Decided() int { return e.decided }

// Elapsed returns the planning time spent so far.
func (e *Env) Elapsed() float64 { return e.elapsed }

// Explored returns the exploration mask (do not mutate).
func (e *Env) Explored() []bool { return e.explored }

// StateDim returns the state-vector dimension: 1 + 2n (E, C₁..Cₙ, T₁..Tₙ).
func StateDim(n int) int { return 1 + 2*n }

// State encodes the MDP state (E, C₁..Cₙ, T₁..Tₙ), normalized by τ so the
// Q-network sees budget-relative magnitudes.
func (e *Env) State() []float64 {
	n := e.Ctx.N()
	s := make([]float64, StateDim(n))
	tau := e.Cfg.Budget
	s[0] = e.elapsed / tau
	for i := 0; i < n; i++ {
		s[1+i] = e.costs[i] / tau
		s[1+n+i] = e.estTimes[i] / tau
	}
	return s
}

// Step performs one MDP transition: the agent explores option a (asks the
// QTE to estimate it). It returns the immediate reward and whether the
// episode terminated. Stepping an explored option or a finished episode
// panics — those are agent bugs.
func (e *Env) Step(a int) (reward float64, done bool) {
	if e.done {
		panic("core: Step on finished episode")
	}
	if e.explored[a] {
		panic("core: Step on already-explored option")
	}
	est, cost := e.Cfg.QTE.Estimate(e.Ctx, a, e.cache)
	e.elapsed += cost
	e.estTimes[a] = est
	e.explored[a] = true
	e.remain--
	// Transition: the acting option's cost becomes its actual cost; other
	// unexplored options get cheaper as selectivities are now cached.
	e.costs[a] = cost
	for j := 0; j < e.Ctx.N(); j++ {
		if !e.explored[j] {
			e.costs[j] = e.Cfg.QTE.CostNow(e.Ctx, j, e.cache)
		}
	}
	// Termination (§5.1): (1) estimated-viable option found, (2) out of
	// time, (3) options exhausted.
	switch {
	case e.elapsed+est <= e.Cfg.Budget:
		e.decided = a
	case e.elapsed >= e.Cfg.Budget, e.remain == 0:
		e.decided = e.bestEstimated()
	default:
		return 0, false
	}
	e.done = true
	return e.terminalReward(), true
}

// bestEstimated returns the explored option with the minimum estimated time.
func (e *Env) bestEstimated() int {
	best, bestT := -1, math.Inf(1)
	for i, ex := range e.explored {
		if ex && e.estTimes[i] < bestT {
			best, bestT = i, e.estTimes[i]
		}
	}
	return best
}

// terminalReward runs the decided rewritten query and computes the reward:
// Eq. 1 when Beta == 1, Eq. 2 otherwise.
func (e *Env) terminalReward() float64 {
	tau := e.Cfg.Budget
	actual := e.Ctx.TrueMs[e.decided]
	eff := (tau - e.elapsed - actual) / tau
	beta := e.Cfg.Beta
	if beta >= 1 {
		return eff
	}
	return beta*eff + (1-beta)*e.Ctx.Quality[e.decided]
}

// Outcome summarizes a finished episode for metrics.
type Outcome struct {
	Option   int     // chosen rewriting option
	PlanMs   float64 // planning (estimation) time spent
	ExecMs   float64 // true execution time of the chosen RQ
	TotalMs  float64
	Viable   bool
	Quality  float64
	Explored int // number of options estimated
}

// Outcome returns the episode result; only valid after termination.
func (e *Env) Outcome() Outcome {
	if !e.done {
		panic("core: Outcome before termination")
	}
	exec := e.Ctx.TrueMs[e.decided]
	n := 0
	for _, ex := range e.explored {
		if ex {
			n++
		}
	}
	total := e.elapsed + exec
	return Outcome{
		Option:   e.decided,
		PlanMs:   e.elapsed,
		ExecMs:   exec,
		TotalMs:  total,
		Viable:   total <= e.Cfg.Budget,
		Quality:  e.Ctx.Quality[e.decided],
		Explored: n,
	}
}
