package core

import (
	"fmt"
	"math"

	"github.com/maliva/maliva/internal/engine"
)

// ApproxKind enumerates the approximation rules Maliva can apply (§2, §6).
type ApproxKind uint8

const (
	// ApproxNone is the exact (hint-only) rewriting.
	ApproxNone ApproxKind = iota
	// ApproxSample substitutes the table with a Percent% random sample
	// (Fig. 2/3 in the paper).
	ApproxSample
	// ApproxLimit adds a LIMIT clause sized to Percent% of the optimizer's
	// estimated cardinality (§7.7).
	ApproxLimit
	// ApproxRowSample samples candidate rows at Percent% via the engine's
	// Bernoulli keep-hash (scan-time skip, 1/rate count scaling) — unlike
	// ApproxSample it needs no pre-built sample table and the virtual cost
	// scales with the rate on any base table.
	ApproxRowSample
	// ApproxReservoir draws a uniform reservoir sample sized to Percent% of
	// the estimated cardinality; the matched count stays exact.
	ApproxReservoir
	// ApproxCMS answers a keyword-count query from the table's Count-Min
	// sketch (overestimate-only error bound, near-zero cost).
	ApproxCMS
	// ApproxHLL answers a distinct-words query from the table's HyperLogLog
	// summaries (relative-standard-error bound, near-zero cost).
	ApproxHLL
)

// String names the approximation kind.
func (k ApproxKind) String() string {
	switch k {
	case ApproxNone:
		return "none"
	case ApproxSample:
		return "sample"
	case ApproxLimit:
		return "limit"
	case ApproxRowSample:
		return "rows"
	case ApproxReservoir:
		return "reservoir"
	case ApproxCMS:
		return "cms"
	case ApproxHLL:
		return "hll"
	}
	return fmt.Sprintf("ApproxKind(%d)", uint8(k))
}

// ApproxRule is one approximation rule with its rate parameter.
type ApproxRule struct {
	Kind    ApproxKind
	Percent float64 // sample percent, or limit as % of estimated cardinality
}

// Option is a rewriting option RO = (h, a): a query-hint set plus an
// approximation-rule set (either can be empty).
type Option struct {
	// Mask selects main-table predicate positions whose index the hint
	// forces; HasHint=false means "no hint" (optimizer decides).
	Mask    uint32
	HasHint bool
	// Join is the forced join method (JoinAuto = no join hint).
	Join engine.JoinMethod
	// Approx is the approximation rule (Kind == ApproxNone for exact).
	Approx ApproxRule
}

// Label renders a short human-readable identifier such as "idx{0,2}+nl" or
// "limit4%".
func (o Option) Label(numPreds int) string {
	s := ""
	if o.HasHint {
		s = "idx{"
		first := true
		for i := 0; i < numPreds; i++ {
			if o.Mask&(1<<uint(i)) != 0 {
				if !first {
					s += ","
				}
				s += fmt.Sprint(i)
				first = false
			}
		}
		s += "}"
	} else {
		s = "auto"
	}
	switch o.Join {
	case engine.NestLoopJoin:
		s += "+nl"
	case engine.HashJoin:
		s += "+hash"
	case engine.MergeJoin:
		s += "+merge"
	}
	switch o.Approx.Kind {
	case ApproxSample:
		s += fmt.Sprintf("+sample%g%%", o.Approx.Percent)
	case ApproxLimit:
		s += fmt.Sprintf("+limit%g%%", o.Approx.Percent)
	case ApproxRowSample:
		s += fmt.Sprintf("+rows%g%%", o.Approx.Percent)
	case ApproxReservoir:
		s += fmt.Sprintf("+res%g%%", o.Approx.Percent)
	case ApproxCMS:
		s += "+cms"
	case ApproxHLL:
		s += "+hll"
	}
	return s
}

// IsApprox reports whether the option changes query results.
func (o Option) IsApprox() bool { return o.Approx.Kind != ApproxNone }

// SpaceSpec describes how to enumerate the rewriting-option set Ω for a
// query (§3: Ω = {RO₁, …}).
type SpaceSpec struct {
	// IncludeEmptyHint includes the forced-no-index option RQ0. The paper
	// uses 2^m options for selection queries (Fig. 4) and 7 = 2^3−1 index
	// combinations for join queries (§7.5).
	IncludeEmptyHint bool
	// JoinMethods, when non-empty, crosses index combinations with these
	// forced join methods (join workloads use all three).
	JoinMethods []engine.JoinMethod
	// ApproxRules are appended as additional options applied to the original
	// (unhinted) query, as in §7.7.
	ApproxRules []ApproxRule
	// CrossApprox additionally crosses every approximation rule with every
	// hint set (the paper's Fig. 11: 8 hint sets × 3 approximation-rule
	// sets). Without it approximation options run on the optimizer's plan.
	CrossApprox bool
}

// HintOnlySpec returns the default §7.2 space: all 2^m index subsets.
func HintOnlySpec() SpaceSpec { return SpaceSpec{IncludeEmptyHint: true} }

// JoinSpec returns the §7.5 space: 7 non-empty index combinations × 3 join
// methods = 21 options.
func JoinSpec() SpaceSpec {
	return SpaceSpec{
		IncludeEmptyHint: false,
		JoinMethods: []engine.JoinMethod{
			engine.NestLoopJoin, engine.HashJoin, engine.MergeJoin,
		},
	}
}

// QualityAwareSpec returns the §7.7 space: all 2^m index subsets plus the
// five LIMIT rules.
func QualityAwareSpec() SpaceSpec {
	return SpaceSpec{
		IncludeEmptyHint: true,
		ApproxRules: []ApproxRule{
			{Kind: ApproxLimit, Percent: 0.032},
			{Kind: ApproxLimit, Percent: 0.16},
			{Kind: ApproxLimit, Percent: 0.8},
			{Kind: ApproxLimit, Percent: 4},
			{Kind: ApproxLimit, Percent: 20},
		},
	}
}

// ApproxTierSpec returns the approximate-tier space: all index subsets plus
// Bernoulli row sampling at three rates, a reservoir rule, and the
// sketch-served aggregates (the latter two survive enumeration only for
// queries their shapes can answer — see EnumerateOptions). Row-sampling
// rates ladder down so some rate fits any budget: each step cuts the
// fetch/scan cost ~5x at a √rate cost in relative error.
func ApproxTierSpec() SpaceSpec {
	return SpaceSpec{
		IncludeEmptyHint: true,
		ApproxRules: []ApproxRule{
			{Kind: ApproxRowSample, Percent: 20},
			{Kind: ApproxRowSample, Percent: 4},
			{Kind: ApproxRowSample, Percent: 0.8},
			{Kind: ApproxReservoir, Percent: 4},
			{Kind: ApproxCMS},
			{Kind: ApproxHLL},
		},
	}
}

// EnumerateOptions builds Ω for a query under the spec. Only predicates with
// a usable index participate in hint masks.
func EnumerateOptions(db *engine.DB, q *engine.Query, spec SpaceSpec) []Option {
	t := db.Table(q.Table)
	if t == nil {
		return nil
	}
	idxable := indexablePreds(t, q)
	var masks []uint32
	n := len(idxable)
	for m := 0; m < 1<<uint(n); m++ {
		if m == 0 && !spec.IncludeEmptyHint {
			continue
		}
		var mask uint32
		for b := 0; b < n; b++ {
			if m&(1<<uint(b)) != 0 {
				mask |= 1 << uint(idxable[b])
			}
		}
		masks = append(masks, mask)
	}
	var opts []Option
	joins := spec.JoinMethods
	if len(joins) == 0 || q.Join == nil {
		joins = []engine.JoinMethod{engine.JoinAuto}
	}
	for _, mask := range masks {
		for _, jm := range joins {
			opts = append(opts, Option{Mask: mask, HasHint: true, Join: jm})
		}
	}
	for _, ar := range spec.ApproxRules {
		if !ruleEligible(t, q, ar.Kind) {
			continue
		}
		opts = append(opts, Option{Approx: ar})
		if spec.CrossApprox {
			for _, mask := range masks {
				if mask == 0 {
					continue // the unhinted option above covers it
				}
				for _, jm := range joins {
					opts = append(opts, Option{Mask: mask, HasHint: true, Join: jm, Approx: ar})
				}
			}
		}
	}
	return opts
}

// ruleEligible reports whether an approximation rule is defined for the
// query's shape. Row/reservoir sampling needs the single-table path (the
// engine defines no sampled joins); sketch rules additionally need the
// table's summary store and a predicate shape the summaries can answer —
// CMS: exactly one keyword plus at most one time window; HLL: a time window
// (or nothing) only. Ineligible rules simply don't enter Ω, so the agent
// never has to learn to avoid an action that would error.
func ruleEligible(t *engine.Table, q *engine.Query, kind ApproxKind) bool {
	switch kind {
	case ApproxRowSample, ApproxReservoir:
		return q.Join == nil && q.SamplePercent == 0
	case ApproxCMS, ApproxHLL:
	default:
		return true
	}
	sk := t.Sketch
	if sk == nil || q.Join != nil || q.SamplePercent > 0 || q.Limit > 0 {
		return false
	}
	words, windows := 0, 0
	for _, p := range q.Preds {
		switch {
		case p.Kind == engine.PredKeyword:
			words++
		case p.Kind == engine.PredRange && p.Col == sk.TimeCol:
			windows++
		default:
			return false
		}
	}
	if windows > 1 {
		return false
	}
	if kind == ApproxCMS {
		return words == 1
	}
	return words == 0
}

// indexablePreds returns predicate positions that can be served by an index.
func indexablePreds(t *engine.Table, q *engine.Query) []int {
	var out []int
	for i, p := range q.Preds {
		ix := t.Index(p.Col)
		if ix == nil {
			continue
		}
		switch {
		case ix.Kind == engine.IndexBTree && p.Kind == engine.PredRange,
			ix.Kind == engine.IndexRTree && p.Kind == engine.PredGeo,
			ix.Kind == engine.IndexInverted && p.Kind == engine.PredKeyword:
			out = append(out, i)
		}
	}
	return out
}

// BuildRQ materializes the rewritten query RQ = apply(RO, Q) plus the engine
// hint to execute it with. estRows is the optimizer's cardinality estimate of
// the original query at real scale (used to size LIMIT rules), and scale is
// the table's ScaleFactor (to convert the limit to stored rows).
func BuildRQ(q *engine.Query, o Option, estRows, scale float64) (*engine.Query, engine.Hint) {
	rq := q.Clone()
	h := engine.Hint{Join: o.Join}
	if o.HasHint {
		h.Forced = true
		h.UseIndex = engine.PositionsFromMask(o.Mask, len(q.Preds))
	}
	switch o.Approx.Kind {
	case ApproxSample:
		rq.SamplePercent = int(o.Approx.Percent)
	case ApproxLimit:
		rq.Limit = scaledRows(estRows, o.Approx.Percent, scale)
	case ApproxRowSample:
		rq.Approx = engine.ApproxSpec{Method: engine.ApproxRows, Rate: o.Approx.Percent / 100}
	case ApproxReservoir:
		rq.Approx = engine.ApproxSpec{Method: engine.ApproxReservoir, K: scaledRows(estRows, o.Approx.Percent, scale)}
	case ApproxCMS:
		rq.Approx = engine.ApproxSpec{Method: engine.ApproxSketchCount}
	case ApproxHLL:
		rq.Approx = engine.ApproxSpec{Method: engine.ApproxSketchDistinct}
	}
	return rq, h
}

// scaledRows converts a percent of the real-scale cardinality estimate into
// a stored-row count (min 1) — the sizing rule LIMIT and reservoir share.
func scaledRows(estRows, percent, scale float64) int {
	n := int(math.Ceil(estRows * percent / 100 / math.Max(scale, 1)))
	if n < 1 {
		n = 1
	}
	return n
}

// NeededSels returns the main-table predicate positions whose selectivity a
// QTE must collect to estimate option o: the hinted index positions for
// hint options, and every predicate for approximation options (the rule's
// LIMIT is sized from the full cardinality estimate).
func NeededSels(q *engine.Query, o Option) []int {
	if o.IsApprox() || !o.HasHint {
		all := make([]int, len(q.Preds))
		for i := range all {
			all[i] = i
		}
		return all
	}
	return engine.PositionsFromMask(o.Mask, len(q.Preds))
}
