package core

import (
	"math"
	"testing"
)

func TestBaselineRewriter(t *testing.T) {
	ctx := synthContext([]float64{300, 100}, [][]int{{0}, {1}})
	ctx.BaselineMs = 300
	ctx.BaselineOption = 0
	out := BaselineRewriter{}.Rewrite(ctx, 500)
	if out.Option != 0 || out.PlanMs != 0 || out.ExecMs != 300 || !out.Viable {
		t.Errorf("outcome = %+v", out)
	}
	out = BaselineRewriter{}.Rewrite(ctx, 200)
	if out.Viable {
		t.Error("should be non-viable at τ=200")
	}
}

// TestMDPRewriterOptionSpaceMismatch: a policy trained for one option-space
// shape must not crash on a query with a different option count (a frontend
// request with fewer predicates than the training workload) — it degrades
// to the no-rewrite baseline instead.
func TestMDPRewriterOptionSpaceMismatch(t *testing.T) {
	agent := NewAgent(fastAgentConfig(), 4) // trained shape: |Ω| = 4
	ctx := synthContext([]float64{300, 100}, [][]int{{0}, {1}})
	ctx.BaselineMs = 300
	ctx.BaselineOption = 0
	rw := &MDPRewriter{Agent: agent, QTE: &stubQTE{UnitMs: 10, BaseMs: 5}}
	out := rw.Rewrite(ctx, 500) // |Ω| = 2: must not panic
	want := BaselineRewriter{}.Rewrite(ctx, 500)
	if out != want {
		t.Errorf("mismatched option space: outcome = %+v, want baseline %+v", out, want)
	}
}

func TestNaiveRewriterExploresEverything(t *testing.T) {
	ctx := synthContext([]float64{400, 150, 600}, [][]int{{0}, {1}, {2}})
	qte := &stubQTE{UnitMs: 30, BaseMs: 10}
	out := NaiveRewriter{QTE: qte}.Rewrite(ctx, 1000)
	if out.Explored != 3 {
		t.Errorf("Explored = %d, want 3", out.Explored)
	}
	if out.Option != 1 {
		t.Errorf("Option = %d, want the fastest estimate", out.Option)
	}
	wantPlan := 3 * (30 + 10.0)
	if math.Abs(out.PlanMs-wantPlan) > 1e-9 {
		t.Errorf("PlanMs = %v, want %v", out.PlanMs, wantPlan)
	}
	if math.Abs(out.TotalMs-(wantPlan+150)) > 1e-9 {
		t.Errorf("TotalMs = %v", out.TotalMs)
	}
}

func TestNaiveRewriterExactOnly(t *testing.T) {
	ctx := synthContext([]float64{400, 150}, [][]int{{0}, {1}})
	ctx.Options = append(ctx.Options, Option{Approx: ApproxRule{Kind: ApproxLimit, Percent: 1}})
	ctx.TrueMs = append(ctx.TrueMs, 10)
	ctx.Quality = append(ctx.Quality, 0.1)
	ctx.NeedSels = append(ctx.NeedSels, []int{0, 1})
	ctx.PlanEst = append(ctx.PlanEst, ctx.PlanEst[0])

	qte := &stubQTE{UnitMs: 10, BaseMs: 0}
	out := NaiveRewriter{QTE: qte, ExactOnly: true}.Rewrite(ctx, 1000)
	if out.Explored != 2 || out.Option == 2 {
		t.Errorf("ExactOnly should skip approx options: %+v", out)
	}
	out = NaiveRewriter{QTE: qte}.Rewrite(ctx, 1000)
	if out.Explored != 3 || out.Option != 2 {
		t.Errorf("full naive should pick the limit option: %+v", out)
	}
}

func TestOracleRewriter(t *testing.T) {
	ctx := synthContext([]float64{400, 150, 600}, [][]int{{0}, {1}, {2}})
	out := OracleRewriter{}.Rewrite(ctx, 500)
	if out.Option != 1 || !out.Viable || out.PlanMs != 0 {
		t.Errorf("outcome = %+v", out)
	}
}

func TestSubContextMapping(t *testing.T) {
	ctx := synthContext([]float64{400, 150, 600}, [][]int{{0}, {1}, {2}})
	ctx.Options[2].Approx = ApproxRule{Kind: ApproxLimit, Percent: 5}
	ctx.Quality[2] = 0.4
	ctx.BaselineOption = 1

	exact := ExactOptionIndexes(ctx)
	if len(exact) != 2 {
		t.Fatalf("exact = %v", exact)
	}
	approx := ApproxOptionIndexes(ctx)
	if len(approx) != 1 || approx[0] != 2 {
		t.Fatalf("approx = %v", approx)
	}
	sub := SubContext(ctx, exact)
	if sub.N() != 2 || sub.TrueMs[1] != 150 || sub.BaselineOption != 1 {
		t.Errorf("sub context wrong: %+v", sub)
	}
	sub2 := SubContext(ctx, approx)
	if sub2.N() != 1 || sub2.Quality[0] != 0.4 || sub2.BaselineOption != -1 {
		t.Errorf("approx sub context wrong: %+v", sub2)
	}
}

// TestTwoStageFallsThroughToApprox: when no exact option is viable, the
// two-stage rewriter must explore the approximation stage and return an
// approximate decision.
func TestTwoStageFallsThroughToApprox(t *testing.T) {
	// Exact options all cost 2000 ms; one approx option runs in 100 ms.
	ctx := synthContext([]float64{2000, 2000}, [][]int{{0}, {1}})
	ctx.Options = append(ctx.Options, Option{Approx: ApproxRule{Kind: ApproxLimit, Percent: 5}})
	ctx.TrueMs = append(ctx.TrueMs, 100)
	ctx.Quality = append(ctx.Quality, 0.6)
	ctx.NeedSels = append(ctx.NeedSels, []int{0, 1})
	ctx.PlanEst = append(ctx.PlanEst, ctx.PlanEst[0])

	qte := &stubQTE{UnitMs: 20, BaseMs: 5}
	one := NewAgent(fastAgentConfig(), 2)
	two := NewAgent(fastAgentConfig(), 1)
	rw := &TwoStageRewriter{StageOne: one, StageTwo: two, QTE: qte, Beta: 0.7}
	out := rw.Rewrite(ctx, 500)
	if out.Option != 2 {
		t.Fatalf("two-stage should fall through to the approx option, got %d", out.Option)
	}
	if !out.Viable {
		t.Errorf("expected viable approx outcome: %+v", out)
	}
	if out.Quality != 0.6 {
		t.Errorf("quality = %v", out.Quality)
	}
	// Stage-1 exploration must be charged: plan time covers both stages.
	if out.PlanMs <= 2*(20+5)-1 {
		t.Errorf("plan time %v should include stage-1 exploration", out.PlanMs)
	}
}

// TestTwoStageKeepsExactWhenViable: with a viable exact option, stage 2 is
// never consulted.
func TestTwoStageKeepsExactWhenViable(t *testing.T) {
	ctx := synthContext([]float64{100, 2000}, [][]int{{0}, {1}})
	ctx.Options = append(ctx.Options, Option{Approx: ApproxRule{Kind: ApproxLimit, Percent: 5}})
	ctx.TrueMs = append(ctx.TrueMs, 50)
	ctx.Quality = append(ctx.Quality, 0.3)
	ctx.NeedSels = append(ctx.NeedSels, []int{0, 1})
	ctx.PlanEst = append(ctx.PlanEst, ctx.PlanEst[0])

	qte := &stubQTE{UnitMs: 20, BaseMs: 5}
	one := NewAgent(fastAgentConfig(), 2)
	two := NewAgent(fastAgentConfig(), 1)
	// Train stage one so it reliably finds the viable exact option.
	exact := SubContext(ctx, ExactOptionIndexes(ctx))
	one.Train([]*QueryContext{exact, exact, exact}, EnvConfig{Budget: 500, QTE: qte, Beta: 1})

	rw := &TwoStageRewriter{StageOne: one, StageTwo: two, QTE: qte, Beta: 0.7}
	out := rw.Rewrite(ctx, 500)
	if ctx.Options[out.Option].IsApprox() {
		t.Fatalf("two-stage gave up quality despite a viable exact option: %+v", out)
	}
	if out.Quality != 1 {
		t.Errorf("quality = %v, want 1", out.Quality)
	}
}

func TestMDPRewriterName(t *testing.T) {
	r := &MDPRewriter{QTE: &stubQTE{}, Tag: "Accurate-QTE"}
	if r.Name() != "MDP (Accurate-QTE)" {
		t.Errorf("Name = %q", r.Name())
	}
	r2 := &MDPRewriter{QTE: &stubQTE{}}
	if r2.Name() != "MDP (stub)" {
		t.Errorf("Name = %q", r2.Name())
	}
}
