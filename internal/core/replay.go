package core

import "math/rand"

// Experience is one MDP transition (s, a, s′, r′) plus the termination flag
// and the next state's exploration mask (needed to mask invalid actions when
// computing the Bellman target).
type Experience struct {
	State        []float64
	Action       int
	NextState    []float64
	Reward       float64
	Done         bool
	NextExplored []bool
}

// Replay is a fixed-capacity FIFO experience buffer (the paper's replay
// memory M with capacity C, replaced FIFO when full).
type Replay struct {
	cap   int
	buf   []Experience
	next  int
	count int
}

// NewReplay creates a replay memory with the given capacity.
func NewReplay(capacity int) *Replay {
	if capacity <= 0 {
		capacity = 1
	}
	return &Replay{cap: capacity, buf: make([]Experience, capacity)}
}

// Add stores an experience, evicting the oldest when full.
func (r *Replay) Add(e Experience) {
	r.buf[r.next] = e
	r.next = (r.next + 1) % r.cap
	if r.count < r.cap {
		r.count++
	}
}

// Len returns the number of stored experiences.
func (r *Replay) Len() int { return r.count }

// Cap returns the capacity.
func (r *Replay) Cap() int { return r.cap }

// Sample draws n experiences uniformly with replacement.
func (r *Replay) Sample(rng *rand.Rand, n int) []Experience {
	if r.count == 0 {
		return nil
	}
	out := make([]Experience, n)
	for i := range out {
		out[i] = r.buf[rng.Intn(r.count)]
	}
	return out
}
