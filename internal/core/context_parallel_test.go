package core

import (
	"errors"
	"reflect"
	"testing"
)

// TestBuildContextParallelDeterministic: building the same context serially
// and with a worker pool yields byte-identical ground truth — every field a
// downstream consumer (MDP training, QTEs, evaluation) can observe.
func TestBuildContextParallelDeterministic(t *testing.T) {
	db, q := smallDB(t, 2000)
	base := DefaultContextConfig(HintOnlySpec())

	serialCfg := base
	serialCfg.Parallel = 1
	serial, err := BuildContext(db, q, serialCfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{0, 2, 7} {
		cfg := base
		cfg.Parallel = workers
		par, err := BuildContext(db, q, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(par.TrueMs, serial.TrueMs) {
			t.Errorf("workers=%d: TrueMs diverges\n got %v\nwant %v", workers, par.TrueMs, serial.TrueMs)
		}
		if !reflect.DeepEqual(par.Quality, serial.Quality) {
			t.Errorf("workers=%d: Quality diverges", workers)
		}
		if !reflect.DeepEqual(par.SelTrue, serial.SelTrue) {
			t.Errorf("workers=%d: SelTrue diverges", workers)
		}
		if !reflect.DeepEqual(par.SelSampled, serial.SelSampled) {
			t.Errorf("workers=%d: SelSampled diverges", workers)
		}
		if !reflect.DeepEqual(par.NeedSels, serial.NeedSels) {
			t.Errorf("workers=%d: NeedSels diverges", workers)
		}
		if !reflect.DeepEqual(par.PlanEst, serial.PlanEst) {
			t.Errorf("workers=%d: PlanEst diverges", workers)
		}
		if par.Fingerprint != serial.Fingerprint {
			t.Errorf("workers=%d: Fingerprint %x, want %x", workers, par.Fingerprint, serial.Fingerprint)
		}
		if par.BaselineMs != serial.BaselineMs || par.BaselineOption != serial.BaselineOption {
			t.Errorf("workers=%d: baseline (%v, %d) diverges from (%v, %d)",
				workers, par.BaselineMs, par.BaselineOption, serial.BaselineMs, serial.BaselineOption)
		}
	}
}

// TestRunIndexed: pool behavior — covers all indices exactly once at any
// worker count, and reports the lowest-index error deterministically.
func TestRunIndexed(t *testing.T) {
	for _, workers := range []int{1, 2, 16} {
		hits := make([]int, 100)
		if err := RunIndexed(len(hits), workers, func(i int) error {
			hits[i]++
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}

	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 4} {
		err := RunIndexed(10, workers, func(i int) error {
			switch i {
			case 3:
				return errLow
			case 8:
				return errHigh
			}
			return nil
		})
		if workers == 1 {
			// Serial path bails at the first failure.
			if !errors.Is(err, errLow) {
				t.Fatalf("workers=1: err = %v, want %v", err, errLow)
			}
		} else if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: err = %v, want lowest-index error %v", workers, err, errLow)
		}
	}
}
