package nn

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// lossAt computes ½·MSE between the network output and a target for the
// numerical gradient check.
func lossAt(m *MLP, x, target []float64) float64 {
	out := m.Forward(x)
	var l float64
	for i := range out {
		d := out[i] - target[i]
		l += d * d
	}
	return l
}

// TestGradientMatchesNumerical verifies backprop against central-difference
// numerical gradients on random small networks — the foundation the DQN and
// Bao QTE stand on. Cases where a hidden pre-activation sits within the
// finite-difference step of a ReLU kink are skipped: the loss is not
// differentiable there, so the comparison is meaningless, not a bug.
func TestGradientMatchesNumerical(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sizes := []int{3, 5, 4, 2}
		m := NewMLP(sizes, rng)
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		target := []float64{rng.NormFloat64(), rng.NormFloat64()}

		// Analytic gradients.
		m.ZeroGrad()
		out := m.Forward(x)
		for li := 1; li < len(m.pre)-1; li++ {
			for _, v := range m.pre[li] {
				if math.Abs(v) < 1e-3 {
					return true // too close to a ReLU kink; skip this case
				}
			}
		}
		grad := make([]float64, len(out))
		for i := range out {
			grad[i] = 2 * (out[i] - target[i])
		}
		m.Backward(grad)

		// Compare a sample of weights per layer numerically.
		const eps = 1e-5
		for li, layer := range m.Layers {
			for _, wi := range []int{0, len(layer.W) / 2, len(layer.W) - 1} {
				orig := layer.W[wi]
				layer.W[wi] = orig + eps
				lp := lossAt(m, x, target)
				layer.W[wi] = orig - eps
				lm := lossAt(m, x, target)
				layer.W[wi] = orig
				numeric := (lp - lm) / (2 * eps)
				analytic := layer.gw[wi]
				if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
					t.Logf("layer %d w[%d]: analytic %v numeric %v", li, wi, analytic, numeric)
					return false
				}
			}
			// One bias per layer.
			bi := len(layer.B) - 1
			orig := layer.B[bi]
			layer.B[bi] = orig + eps
			lp := lossAt(m, x, target)
			layer.B[bi] = orig - eps
			lm := lossAt(m, x, target)
			layer.B[bi] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-layer.gb[bi]) > 1e-4*(1+math.Abs(numeric)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 60,
		Rand:     rand.New(rand.NewSource(20230329)), // deterministic seeds
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTrainingConvergesOnXOR: the network learns a non-linear function,
// proving the ReLU/backprop/Adam loop end to end.
func TestTrainingConvergesOnXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP([]int{2, 8, 8, 1}, rng)
	adam := NewAdam(5e-3)
	inputs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := []float64{0, 1, 1, 0}
	for epoch := 0; epoch < 3000; epoch++ {
		i := rng.Intn(4)
		out := m.Forward(inputs[i])
		m.Backward([]float64{2 * (out[0] - targets[i])})
		adam.Step(m)
	}
	for i, x := range inputs {
		got := m.Forward(x)[0]
		if math.Abs(got-targets[i]) > 0.2 {
			t.Errorf("XOR(%v) = %.3f, want %.0f", x, got, targets[i])
		}
	}
}

func TestSGDStepReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP([]int{4, 6, 1}, rng)
	x := []float64{1, -0.5, 0.25, 2}
	target := []float64{3}
	before := lossAt(m, x, target)
	for i := 0; i < 50; i++ {
		out := m.Forward(x)
		m.Backward([]float64{2 * (out[0] - target[0])})
		m.StepSGD(0.01)
	}
	after := lossAt(m, x, target)
	if after >= before {
		t.Errorf("SGD did not reduce loss: %v → %v", before, after)
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLP([]int{3, 4, 2}, rng)
	cp := m.Clone()
	x := []float64{1, 2, 3}
	a := append([]float64(nil), m.Forward(x)...)
	b := append([]float64(nil), cp.Forward(x)...)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clone forward differs at %d", i)
		}
	}
	// Train the original; the clone must not move.
	out := m.Forward(x)
	m.Backward([]float64{1, 1})
	m.StepSGD(0.1)
	_ = out
	c := cp.Forward(x)
	for i := range b {
		if b[i] != c[i] {
			t.Fatal("training the original changed the clone")
		}
	}
}

func TestCopyWeightsFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := NewMLP([]int{2, 3, 1}, rng)
	b := NewMLP([]int{2, 3, 1}, rng)
	if err := b.CopyWeightsFrom(a); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.7}
	if a.Forward(x)[0] != b.Forward(x)[0] {
		t.Error("outputs differ after CopyWeightsFrom")
	}
	c := NewMLP([]int{2, 4, 1}, rng)
	if err := c.CopyWeightsFrom(a); err == nil {
		t.Error("expected shape-mismatch error")
	}
}

func TestClipGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMLP([]int{2, 3, 1}, rng)
	m.Forward([]float64{100, -100})
	m.Backward([]float64{1000})
	m.ClipGrad(1.0)
	var norm float64
	for _, l := range m.Layers {
		for _, g := range l.gw {
			norm += g * g
		}
		for _, g := range l.gb {
			norm += g * g
		}
	}
	if math.Sqrt(norm) > 1.0+1e-9 {
		t.Errorf("gradient norm %v exceeds clip", math.Sqrt(norm))
	}
}

// TestSerializationRoundTrip: JSON round trip preserves behaviour exactly.
func TestSerializationRoundTrip(t *testing.T) {
	prop := func(seed int64, x0, x1, x2 float64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMLP([]int{3, 5, 2}, rng)
		data, err := json.Marshal(m)
		if err != nil {
			return false
		}
		var back MLP
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		x := []float64{math.Mod(x0, 10), math.Mod(x1, 10), math.Mod(x2, 10)}
		for i, v := range x {
			if math.IsNaN(v) {
				x[i] = 0
			}
		}
		a := m.Forward(x)
		b := back.Forward(x)
		return a[0] == b[0] && a[1] == b[1]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	var m MLP
	for _, bad := range []string{
		`{"sizes":[3],"layers":[]}`,
		`{"sizes":[3,2],"layers":[{"w":[1,2],"b":[0,0]}]}`, // wrong W size
		`not json`,
	} {
		if err := json.Unmarshal([]byte(bad), &m); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestNumParams(t *testing.T) {
	m := NewMLP([]int{3, 4, 2}, rand.New(rand.NewSource(1)))
	want := 3*4 + 4 + 4*2 + 2
	if got := m.NumParams(); got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
}

func TestForwardPanicsOnWrongInput(t *testing.T) {
	m := NewMLP([]int{3, 2}, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Forward([]float64{1})
}
