package nn

import (
	"encoding/json"
	"fmt"
	"math/rand"
)

// mlpJSON is the serialized network form: architecture plus flat weights.
type mlpJSON struct {
	Sizes  []int       `json:"sizes"`
	Layers []denseJSON `json:"layers"`
}

type denseJSON struct {
	W []float64 `json:"w"`
	B []float64 `json:"b"`
}

// MarshalJSON serializes the network weights (optimizer state is not saved).
func (m *MLP) MarshalJSON() ([]byte, error) {
	out := mlpJSON{Sizes: m.Sizes}
	for _, l := range m.Layers {
		out.Layers = append(out.Layers, denseJSON{W: l.W, B: l.B})
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a network saved with MarshalJSON.
func (m *MLP) UnmarshalJSON(data []byte) error {
	var in mlpJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if len(in.Sizes) < 2 || len(in.Layers) != len(in.Sizes)-1 {
		return fmt.Errorf("nn: malformed serialized network (%d sizes, %d layers)", len(in.Sizes), len(in.Layers))
	}
	fresh := NewMLP(in.Sizes, rand.New(rand.NewSource(0)))
	for i, l := range fresh.Layers {
		if len(in.Layers[i].W) != len(l.W) || len(in.Layers[i].B) != len(l.B) {
			return fmt.Errorf("nn: layer %d weight shape mismatch", i)
		}
		copy(l.W, in.Layers[i].W)
		copy(l.B, in.Layers[i].B)
	}
	*m = *fresh
	return nil
}
