// Package nn is a small, dependency-free neural-network library sufficient
// for Maliva's Q-network and Bao's query-time estimator: fully-connected
// layers with ReLU activations, mean-squared-error training, SGD and Adam
// optimizers, and JSON serialization. Gradients are verified against
// numerical differentiation in the package tests.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Dense is one fully-connected layer: y = W·x + b, with W stored row-major
// (out×in).
type Dense struct {
	In, Out int
	W       []float64
	B       []float64

	// Gradient accumulators.
	gw, gb []float64
	// Adam moments.
	mw, vw, mb, vb []float64
}

// newDense creates a layer with Xavier/Glorot-uniform initialization.
func newDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out,
		W:  make([]float64, in*out),
		B:  make([]float64, out),
		gw: make([]float64, in*out),
		gb: make([]float64, out),
		mw: make([]float64, in*out),
		vw: make([]float64, in*out),
		mb: make([]float64, out),
		vb: make([]float64, out),
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range d.W {
		d.W[i] = (rng.Float64()*2 - 1) * limit
	}
	return d
}

// forward computes the affine output for input x.
func (d *Dense) forward(x, out []float64) {
	for o := 0; o < d.Out; o++ {
		s := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xv := range x {
			s += row[i] * xv
		}
		out[o] = s
	}
}

// backward accumulates gradients given input x and upstream gradient dOut,
// and writes the gradient w.r.t. x into dIn.
func (d *Dense) backward(x, dOut, dIn []float64) {
	for i := range dIn {
		dIn[i] = 0
	}
	for o := 0; o < d.Out; o++ {
		g := dOut[o]
		if g == 0 {
			continue
		}
		d.gb[o] += g
		row := d.W[o*d.In : (o+1)*d.In]
		grow := d.gw[o*d.In : (o+1)*d.In]
		for i, xv := range x {
			grow[i] += g * xv
			dIn[i] += g * row[i]
		}
	}
}

// MLP is a multi-layer perceptron with ReLU activations on all hidden
// layers and a linear output layer — the paper's Q-network architecture
// (Fig. 8).
type MLP struct {
	Sizes  []int
	Layers []*Dense

	// scratch buffers, reused across calls (MLP is not goroutine-safe).
	acts  [][]float64 // post-activation per layer (acts[0] = input copy)
	pre   [][]float64 // pre-activation per layer
	grads [][]float64
}

// NewMLP builds an MLP with the given layer sizes, e.g. [17, 17, 17, 8].
func NewMLP(sizes []int, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least input and output sizes")
	}
	m := &MLP{Sizes: append([]int(nil), sizes...)}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, newDense(sizes[i], sizes[i+1], rng))
	}
	m.initScratch()
	return m
}

func (m *MLP) initScratch() {
	m.acts = make([][]float64, len(m.Sizes))
	m.pre = make([][]float64, len(m.Sizes))
	m.grads = make([][]float64, len(m.Sizes))
	for i, s := range m.Sizes {
		m.acts[i] = make([]float64, s)
		m.pre[i] = make([]float64, s)
		m.grads[i] = make([]float64, s)
	}
}

// Forward runs the network and returns the output layer values. The returned
// slice is reused across calls; copy it if you need to keep it.
func (m *MLP) Forward(x []float64) []float64 {
	if len(x) != m.Sizes[0] {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), m.Sizes[0]))
	}
	copy(m.acts[0], x)
	for li, layer := range m.Layers {
		layer.forward(m.acts[li], m.pre[li+1])
		last := li == len(m.Layers)-1
		for i, v := range m.pre[li+1] {
			if !last && v < 0 {
				m.acts[li+1][i] = 0 // ReLU
			} else {
				m.acts[li+1][i] = v
			}
		}
	}
	return m.acts[len(m.acts)-1]
}

// Backward accumulates parameter gradients for the most recent Forward call,
// given the gradient of the loss w.r.t. the network output.
func (m *MLP) Backward(dOut []float64) {
	last := len(m.Layers)
	copy(m.grads[last], dOut)
	for li := last - 1; li >= 0; li-- {
		// ReLU derivative on hidden layers.
		if li != last-1 {
			for i := range m.grads[li+1] {
				if m.pre[li+1][i] < 0 {
					m.grads[li+1][i] = 0
				}
			}
		}
		m.Layers[li].backward(m.acts[li], m.grads[li+1], m.grads[li])
	}
}

// ZeroGrad clears accumulated gradients.
func (m *MLP) ZeroGrad() {
	for _, l := range m.Layers {
		for i := range l.gw {
			l.gw[i] = 0
		}
		for i := range l.gb {
			l.gb[i] = 0
		}
	}
}

// ClipGrad scales gradients so their global L2 norm is at most maxNorm.
func (m *MLP) ClipGrad(maxNorm float64) {
	var sum float64
	for _, l := range m.Layers {
		for _, g := range l.gw {
			sum += g * g
		}
		for _, g := range l.gb {
			sum += g * g
		}
	}
	norm := math.Sqrt(sum)
	if norm <= maxNorm || norm == 0 {
		return
	}
	scale := maxNorm / norm
	for _, l := range m.Layers {
		for i := range l.gw {
			l.gw[i] *= scale
		}
		for i := range l.gb {
			l.gb[i] *= scale
		}
	}
}

// StepSGD applies one plain gradient-descent step with the given learning
// rate and clears the gradients.
func (m *MLP) StepSGD(lr float64) {
	for _, l := range m.Layers {
		for i := range l.W {
			l.W[i] -= lr * l.gw[i]
			l.gw[i] = 0
		}
		for i := range l.B {
			l.B[i] -= lr * l.gb[i]
			l.gb[i] = 0
		}
	}
}

// Adam is the Adam optimizer state shared across steps.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64
	t       int
}

// NewAdam returns Adam with standard defaults and the given learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies one Adam update to the network and clears gradients.
func (a *Adam) Step(m *MLP) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, l := range m.Layers {
		adamUpdate(l.W, l.gw, l.mw, l.vw, a, c1, c2)
		adamUpdate(l.B, l.gb, l.mb, l.vb, a, c1, c2)
	}
}

func adamUpdate(w, g, mm, vv []float64, a *Adam, c1, c2 float64) {
	for i := range w {
		mm[i] = a.Beta1*mm[i] + (1-a.Beta1)*g[i]
		vv[i] = a.Beta2*vv[i] + (1-a.Beta2)*g[i]*g[i]
		mHat := mm[i] / c1
		vHat := vv[i] / c2
		w[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Epsilon)
		g[i] = 0
	}
}

// Clone returns a deep copy with fresh optimizer state (used for target
// networks).
func (m *MLP) Clone() *MLP {
	cp := &MLP{Sizes: append([]int(nil), m.Sizes...)}
	for _, l := range m.Layers {
		nl := &Dense{
			In: l.In, Out: l.Out,
			W:  append([]float64(nil), l.W...),
			B:  append([]float64(nil), l.B...),
			gw: make([]float64, len(l.W)),
			gb: make([]float64, len(l.B)),
			mw: make([]float64, len(l.W)),
			vw: make([]float64, len(l.W)),
			mb: make([]float64, len(l.B)),
			vb: make([]float64, len(l.B)),
		}
		cp.Layers = append(cp.Layers, nl)
	}
	cp.initScratch()
	return cp
}

// CopyWeightsFrom copies weights from src (sizes must match).
func (m *MLP) CopyWeightsFrom(src *MLP) error {
	if len(m.Layers) != len(src.Layers) {
		return errors.New("nn: layer count mismatch")
	}
	for i, l := range m.Layers {
		sl := src.Layers[i]
		if l.In != sl.In || l.Out != sl.Out {
			return fmt.Errorf("nn: layer %d shape mismatch", i)
		}
		copy(l.W, sl.W)
		copy(l.B, sl.B)
	}
	return nil
}

// NumParams returns the total number of trainable parameters.
func (m *MLP) NumParams() int {
	n := 0
	for _, l := range m.Layers {
		n += len(l.W) + len(l.B)
	}
	return n
}
